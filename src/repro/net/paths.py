"""Overlay path enumeration and bottleneck-disjointness analysis (§2.2).

The paper distinguishes two kinds of overlay paths between a source and a
destination DC:

* **Type I** — paths traversing *different DC sequences* (e.g. ``A->B->C``
  vs ``A->C->B`` in Fig. 1);
* **Type II** — paths traversing the *same DC sequence* through *different
  servers* (Fig. 3's ``A->C`` vs ``A->b->C``).

Two overlay paths are **bottleneck-disjoint** when they do not share the
resource that limits their throughput; such pairs can be used simultaneously
without stealing bandwidth from each other, which is the fundamental
opportunity BDS exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.net.topology import (
    ResourceKey,
    Topology,
    downlink_key,
    uplink_key,
)
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class OverlayPath:
    """A store-and-forward overlay path: an ordered tuple of server ids.

    The first server is the data source; each subsequent server stores the
    data before forwarding it (the paper's store-and-forward capability).
    ``resources`` lists every NIC and WAN-link resource the path touches,
    hop by hop.
    """

    servers: Tuple[str, ...]
    resources: Tuple[ResourceKey, ...]

    def __post_init__(self) -> None:
        if len(self.servers) < 2:
            raise ValueError("an overlay path needs at least two servers")
        if len(set(self.servers)) != len(self.servers):
            raise ValueError("overlay paths must not revisit a server")

    @property
    def source(self) -> str:
        return self.servers[0]

    @property
    def destination(self) -> str:
        return self.servers[-1]

    @property
    def num_hops(self) -> int:
        """Number of server-to-server transfers on this path."""
        return len(self.servers) - 1


def build_overlay_path(topology: Topology, servers: Sequence[str]) -> OverlayPath:
    """Construct an :class:`OverlayPath` through the given server sequence.

    Resources are accumulated hop by hop: each hop uses the sender uplink,
    the WAN route between the two DCs, and the receiver downlink.
    """
    resources: List[ResourceKey] = []
    for src, dst in zip(servers, servers[1:]):
        resources.extend(topology.flow_resources(src, dst))
    return OverlayPath(servers=tuple(servers), resources=tuple(resources))


def path_throughput(
    path: OverlayPath, capacities: Dict[ResourceKey, float]
) -> float:
    """End-to-end throughput of a path used alone: its bottleneck capacity.

    For a store-and-forward pipeline in steady state, the sustainable rate is
    the minimum capacity along all hops.
    """
    return min(capacities[r] for r in path.resources)


# ``bottleneck_capacity`` is the historical name used throughout the repo.
bottleneck_capacity = path_throughput


def bottleneck_resources(
    path: OverlayPath, capacities: Dict[ResourceKey, float], tol: float = 1e-9
) -> Set[ResourceKey]:
    """All resources whose capacity equals the path's bottleneck capacity."""
    limit = path_throughput(path, capacities)
    return {
        r for r in path.resources if capacities[r] <= limit * (1.0 + tol)
    }


def are_bottleneck_disjoint(
    path_a: OverlayPath,
    path_b: OverlayPath,
    capacities: Dict[ResourceKey, float],
) -> bool:
    """Whether two paths share no bottleneck resource (§2.2).

    Paths that share non-bottleneck resources are still considered disjoint:
    using both at full rate leaves the shared resource under capacity.
    """
    shared = set(path_a.resources) & set(path_b.resources)
    if not shared:
        return True
    bn_a = bottleneck_resources(path_a, capacities)
    bn_b = bottleneck_resources(path_b, capacities)
    return not (shared & bn_a & bn_b)


def enumerate_dc_paths(
    topology: Topology,
    src_dc: str,
    dst_dc: str,
    max_intermediate: int = 1,
) -> List[Tuple[str, ...]]:
    """All simple DC sequences from ``src_dc`` to ``dst_dc``.

    Includes the direct sequence plus every sequence with up to
    ``max_intermediate`` intermediate DCs (Type I diversity). Sequences only
    use DC adjacencies that have a WAN route.
    """
    if src_dc == dst_dc:
        raise ValueError("source and destination DC must differ")
    names = [d for d in topology.dc_names() if d not in (src_dc, dst_dc)]
    paths: List[Tuple[str, ...]] = [(src_dc, dst_dc)]
    frontier: List[Tuple[str, ...]] = [(src_dc,)]
    for _ in range(max_intermediate):
        next_frontier: List[Tuple[str, ...]] = []
        for prefix in frontier:
            for mid in names:
                if mid in prefix:
                    continue
                candidate = prefix + (mid,)
                next_frontier.append(candidate)
                paths.append(candidate + (dst_dc,))
        frontier = next_frontier
    return paths


def enumerate_overlay_paths(
    topology: Topology,
    src_server: str,
    dst_server: str,
    max_intermediate: int = 1,
    servers_per_relay_dc: int = 1,
    seed: SeedLike = None,
) -> List[OverlayPath]:
    """Server-level overlay paths between two servers.

    For each DC sequence from :func:`enumerate_dc_paths`, picks up to
    ``servers_per_relay_dc`` relay servers per intermediate DC (sampled
    without replacement for Type II diversity), producing concrete
    store-and-forward server chains.
    """
    rng = make_rng(seed)
    src = topology.servers[src_server]
    dst = topology.servers[dst_server]
    results: List[OverlayPath] = []
    if src.dc == dst.dc:
        results.append(build_overlay_path(topology, (src_server, dst_server)))
        return results
    for dc_seq in enumerate_dc_paths(topology, src.dc, dst.dc, max_intermediate):
        intermediates = dc_seq[1:-1]
        if not intermediates:
            results.append(build_overlay_path(topology, (src_server, dst_server)))
            continue
        relay_choices: List[List[str]] = []
        for dc in intermediates:
            candidates = [s.server_id for s in topology.servers_in(dc)]
            if not candidates:
                relay_choices = []
                break
            count = min(servers_per_relay_dc, len(candidates))
            picked = rng.choice(len(candidates), size=count, replace=False)
            relay_choices.append([candidates[int(i)] for i in picked])
        if not relay_choices:
            continue
        for combo in _product(relay_choices):
            chain = (src_server,) + tuple(combo) + (dst_server,)
            if len(set(chain)) != len(chain):
                continue
            results.append(build_overlay_path(topology, chain))
    return results


def _product(choices: Sequence[Sequence[str]]) -> Iterator[Tuple[str, ...]]:
    """Cartesian product of relay choices (tiny, so recursion is fine)."""
    if not choices:
        yield ()
        return
    for head in choices[0]:
        for rest in _product(choices[1:]):
            yield (head,) + rest


def throughput_ratio_samples(
    topology: Topology,
    num_samples: int,
    seed: SeedLike = None,
    load_range: Tuple[float, float] = (0.3, 1.0),
) -> List[float]:
    """Sample ``BW(A->C) / BW(A->b->C)`` ratios over random (A, b, C) triples.

    This reproduces the measurement behind the paper's Fig. 4: ratios far
    from 1 indicate the direct path and the relayed path are bottleneck
    disjoint. Matching what the paper measures:

    * ``BW(A->C)`` is the DC-level WAN route's throughput — bulk transfers
      between DCs ride aggregated WAN capacity, not a single server NIC;
    * ``BW(A->b->C)`` goes through server ``b``, so its NIC bounds the path;
    * both observe *available* bandwidth at measurement time: each resource
      carries cross-traffic, modeled as a per-sample load factor drawn from
      ``load_range``.
    """
    rng = make_rng(seed)
    capacities = topology.resource_capacities()
    dc_names = topology.dc_names()
    if len(dc_names) < 3:
        raise ValueError("need at least 3 DCs to sample relay triples")

    def available(resources: Iterable[ResourceKey], factors: Dict[ResourceKey, float]) -> float:
        worst = float("inf")
        for res in resources:
            if res not in factors:
                factors[res] = float(rng.uniform(*load_range))
            worst = min(worst, capacities[res] * factors[res])
        return worst

    ratios: List[float] = []
    attempts = 0
    while len(ratios) < num_samples and attempts < num_samples * 50:
        attempts += 1
        a_dc, b_dc, c_dc = rng.choice(len(dc_names), size=3, replace=False)
        a_dc, b_dc, c_dc = dc_names[int(a_dc)], dc_names[int(b_dc)], dc_names[int(c_dc)]
        b_servers = topology.servers_in(b_dc)
        if not b_servers:
            continue
        b = b_servers[int(rng.integers(len(b_servers)))]
        try:
            direct_route = topology.route(a_dc, c_dc)
            leg_in = topology.route(a_dc, b_dc)
            leg_out = topology.route(b_dc, c_dc)
        except ValueError:
            continue
        if not direct_route:
            continue
        # One load sample per resource, shared between the two paths so the
        # comparison happens "at the same time" as in the paper.
        factors: Dict[ResourceKey, float] = {}
        bw_direct = available(direct_route, factors)
        relayed_resources = (
            list(leg_in)
            + [downlink_key(b.server_id), uplink_key(b.server_id)]
            + list(leg_out)
        )
        bw_relayed = available(relayed_resources, factors)
        if bw_relayed <= 0:
            continue
        ratios.append(bw_direct / bw_relayed)
    return ratios

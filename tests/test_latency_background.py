"""Latency model and background-traffic model."""

import statistics

import pytest

from repro.net.background import BackgroundTraffic, delay_inflation
from repro.net.latency import LatencyModel
from repro.net.topology import wan_key


class TestLatencyModel:
    def test_delays_positive(self):
        model = LatencyModel(seed=0)
        assert all(d > 0 for d in model.sample_many("a", "b", 100))

    def test_mean_near_configured(self):
        model = LatencyModel(mean_ms=25, seed=1)
        # Average across many DC pairs (each pair has a stable base).
        samples = []
        for i in range(40):
            samples.extend(model.sample_many(f"dc{i}", f"dc{i+100}", 25))
        mean_ms = statistics.mean(samples) * 1000
        assert 10 < mean_ms < 50

    def test_pair_base_is_symmetric(self):
        model = LatencyModel(seed=2)
        ab = model._pair_base("a", "b")
        ba = model._pair_base("b", "a")
        assert ab == ba

    def test_intra_dc_faster_than_inter(self):
        model = LatencyModel(seed=3)
        intra = statistics.mean(model.sample_many("a", "a", 50))
        inter = statistics.mean(model.sample_many("a", "b", 50))
        assert intra < inter

    def test_seeded_reproducibility(self):
        a = LatencyModel(seed=4).sample_many("x", "y", 5)
        b = LatencyModel(seed=4).sample_many("x", "y", 5)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(mean_ms=0)


class TestBackgroundTraffic:
    def test_fraction_within_unit_interval(self):
        bg = BackgroundTraffic(seed=0)
        link = wan_key("a", "b")
        for t in range(0, 24 * 3600, 1800):
            frac = bg.usage_fraction(link, float(t))
            assert 0.0 <= frac <= 1.0

    def test_diurnal_variation_present(self):
        bg = BackgroundTraffic(
            base_fraction=0.2, diurnal_fraction=0.5, noise_fraction=0.0, seed=1
        )
        link = wan_key("a", "b")
        fracs = [bg.usage_fraction(link, t * 600.0) for t in range(144)]
        assert max(fracs) - min(fracs) > 0.3

    def test_phases_differ_across_links(self):
        bg = BackgroundTraffic(noise_fraction=0.0, seed=2)
        p1 = bg._link_phase(wan_key("a", "b"))
        p2 = bg._link_phase(wan_key("c", "d"))
        assert p1 != p2

    def test_usage_scales_with_capacity(self):
        bg = BackgroundTraffic(noise_fraction=0.0, seed=3)
        link = wan_key("a", "b")
        frac = bg.usage_fraction(link, 0.0)
        # A fresh generator with the same seed replays the same noise.
        bg2 = BackgroundTraffic(noise_fraction=0.0, seed=3)
        assert bg2.usage(link, 0.0, 100.0) == pytest.approx(frac * 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackgroundTraffic(base_fraction=1.5)


class TestDelayInflation:
    def test_no_inflation_below_threshold(self):
        assert delay_inflation(0.5) == 1.0
        assert delay_inflation(0.8) == 1.0

    def test_inflation_grows_past_threshold(self):
        assert delay_inflation(0.9) > 1.0
        assert delay_inflation(0.95) > delay_inflation(0.9)

    def test_thirty_x_regime(self):
        # The paper's incident: sustained overload caused ~30x delays.
        assert delay_inflation(0.994) > 30

    def test_capped_at_100(self):
        assert delay_inflation(1.0) <= 100.0

    def test_custom_threshold(self):
        assert delay_inflation(0.7, threshold=0.6) > 1.0
        assert delay_inflation(0.55, threshold=0.6) == 1.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            delay_inflation(0.5, threshold=1.5)

"""Static candidate arrays for the vectorized scheduling kernel.

The rarest-first scheduler's decision space is fixed at job-bind time:
every (block, destination DC) pair of every job is a potential delivery,
and every (block, relay DC) pair a potential relay placement. What varies
per cycle is only *which* of those candidates are still pending and which
pass the health filters — both answerable straight from the possession
matrix with array gathers.

:class:`CandidateTable` materializes that decision space once per
simulation as parallel int arrays (block column id, block index, assigned
destination server id), grouped per (job, DC) in the exact enumeration
order of the legacy scalar scan: for each job, destination DCs first (in
``job.dst_dcs`` order), then relay DCs, each group in ascending block
index. The vectorized ``select`` concatenates the groups' still-alive
rows, which reproduces the legacy insertion order — the tie-breaker of
the stable rarity sort — by construction.

Groups track an ``alive`` row subset that is compacted lazily: when more
than half of a group's alive rows turn out possession-dead during a
cycle's gather, the dead rows are dropped for good. Possession is
monotone while a simulation runs (the simulator never drops copies
mid-run; disk-loss enters as *agent* failure), so a dead candidate can
never come back — the same never-re-add reasoning the incremental
engine's pending maps rely on. Steady-state per-cycle cost therefore
tracks remaining work, not total state size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.overlay.job import MulticastJob
from repro.overlay.store import PossessionMatrix


class CandidateGroup:
    """All candidate rows for one (job, DC) — deliveries or relays."""

    __slots__ = (
        "job",
        "dc",
        "dc_gid",
        "is_relay",
        "gids",
        "indices",
        "dst_sids",
        "alive",
        "objs",
        "objs_dup",
    )

    def __init__(
        self,
        job: MulticastJob,
        dc: str,
        dc_gid: int,
        is_relay: bool,
        gids: np.ndarray,
        indices: np.ndarray,
        dst_sids: np.ndarray,
    ) -> None:
        self.job = job
        self.dc = dc
        self.dc_gid = dc_gid
        self.is_relay = is_relay
        self.gids = gids
        self.indices = indices
        self.dst_sids = dst_sids
        # Row positions not yet known to be possession-dead. Starts full;
        # the kernel shrinks it when a cycle's gather finds >50% dead.
        self.alive = np.arange(len(indices), dtype=np.int64)
        # Per-row ScheduledBlock cache, indexed by *original* row position
        # (compaction shrinks ``alive`` but never renumbers rows). Every
        # field of a row's ScheduledBlock is static except ``duplicates``,
        # so the kernel reuses the cached object while ``objs_dup`` still
        # matches the cycle's rarity gather and rebuilds it otherwise —
        # steady-state cycles then construct no objects at all.
        self.objs: List[object] = [None] * len(indices)
        self.objs_dup: List[int] = [-1] * len(indices)


class CandidateTable:
    """Per-job candidate groups, keyed by job id.

    Built once after initial seeding (all of a job's blocks are interned
    into the matrix by then; :meth:`PossessionMatrix.intern` is still
    called defensively so the table never depends on seeding order).
    Owned by the :class:`~repro.net.simulator.Simulation` and shared by
    every cycle's view — including partition clones, whose extra failed
    agents are a per-cycle mask, not a table property. Speculation
    overlays must *not* carry the table (their store shadows the matrix
    with phantom copies); :class:`~repro.core.speculation.SpeculatedView`
    drops it, which sends the scheduler down the scalar path.

    The table also grows incrementally: a sharded controller's
    partition-scoped mirrors start empty and :meth:`ensure_job` each job
    the first time its shard sees it (the group arrays are identical to
    a build-at-once table — only the interned gid numbering differs with
    arrival order, and nothing downstream compares gids across jobs), so
    a mirror's candidate memory is O(its partition's pairs).
    """

    def __init__(
        self, jobs: Sequence[MulticastJob], matrix: PossessionMatrix
    ) -> None:
        self.matrix = matrix
        self.groups_by_job: Dict[str, List[CandidateGroup]] = {}
        for job in jobs:
            self.ensure_job(job)

    def ensure_job(
        self, job: MulticastJob, gids: Optional[np.ndarray] = None
    ) -> None:
        """Build the job's candidate groups if not already present.

        ``gids`` lets a caller that just bulk-interned the job's blocks
        (shard mirrors via :meth:`PossessionMatrix.intern_block_range`)
        hand the column ids over directly, skipping the per-block intern
        loop on the cold path.
        """
        if job.job_id in self.groups_by_job:
            return
        matrix = self.matrix
        server_ids = matrix.server_ids
        if gids is None:
            gids = np.fromiter(
                (matrix.intern(b.block_id) for b in job.blocks),
                dtype=np.int64,
                count=len(job.blocks),
            )
        indices = np.arange(len(job.blocks), dtype=np.int64)
        groups: List[CandidateGroup] = []
        for dc, is_relay in [(d, False) for d in job.dst_dcs] + [
            (d, True) for d in job.relay_dcs
        ]:
            dst_sids = self._striped_sids(job, dc)
            if dst_sids is None:
                dst_sids = np.fromiter(
                    (
                        server_ids[job.assigned_server(dc, b.block_id)]
                        for b in job.blocks
                    ),
                    dtype=np.int64,
                    count=len(job.blocks),
                )
            groups.append(
                CandidateGroup(
                    job=job,
                    dc=dc,
                    dc_gid=matrix.dc_ids[dc],
                    is_relay=is_relay,
                    gids=gids,
                    indices=indices,
                    dst_sids=dst_sids,
                )
            )
        self.groups_by_job[job.job_id] = groups

    def _striped_sids(
        self, job: MulticastJob, dc: str
    ) -> Optional[np.ndarray]:
        """Vectorized per-block destination sids via striping periodicity.

        :meth:`MulticastJob.bind` stripes round-robin by block index
        (``servers[index % len(servers)]``), so the per-block assigned
        server repeats with period = the DC's server count. Probing the
        assignment until the first server recurs recovers that pattern
        with O(servers-per-DC) lookups instead of O(blocks); the pattern
        is then verified at the last and middle block (and the repeat
        point itself) before use. Returns ``None`` — caller falls back
        to the exact per-block loop — if any probe disagrees, so a
        hypothetical non-round-robin layout stays correct, just slower.
        """
        blocks = job.blocks
        n = len(blocks)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        server_ids = self.matrix.server_ids
        assigned = job.assigned_server
        first = server_ids[assigned(dc, blocks[0].block_id)]
        pattern: List[int] = [first]
        for k in range(1, n):
            sid = server_ids[assigned(dc, blocks[k].block_id)]
            if sid == first:
                break
            pattern.append(sid)
        period = len(pattern)
        if period >= n:
            return np.asarray(pattern, dtype=np.int64)
        for probe in (period, n // 2, n - 1):
            if (
                server_ids[assigned(dc, blocks[probe].block_id)]
                != pattern[probe % period]
            ):
                return None
        pat = np.asarray(pattern, dtype=np.int64)
        return pat[np.arange(n, dtype=np.int64) % period]

    def state_bytes(self) -> int:
        """Bytes held by the candidate arrays (plus the object caches).

        Per group: the shared gids/indices arrays are counted once per
        job via their group references (they alias across a job's
        groups, but the estimate deliberately counts the per-group view
        the kernel touches — a stable, monotone overapproximation that
        shrinks with ``alive`` compaction), the per-group dst/alive
        arrays, and 8 pointer bytes per ScheduledBlock cache slot.
        """
        total = 0
        for groups in self.groups_by_job.values():
            for g in groups:
                total += int(
                    g.gids.nbytes
                    + g.indices.nbytes
                    + g.dst_sids.nbytes
                    + g.alive.nbytes
                )
                total += 16 * len(g.objs)
        return total

"""Topology presets."""

import pytest

from repro.core import BDSController
from repro.net.presets import baidu_like, dumbbell, global_regions
from repro.net.simulator import SimConfig, Simulation
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


class TestBaiduLike:
    def test_shape(self):
        topo = baidu_like(servers_per_dc=3)
        assert len(topo.dcs) == 10
        assert len(topo.servers) == 30
        # Fully meshed: 10*9 directed links.
        assert len(topo.links) == 90

    def test_intra_metro_links_fatter(self):
        topo = baidu_like()
        assert topo.link_capacity("bj1", "bj2") == 4 * topo.link_capacity(
            "bj1", "sh1"
        )

    def test_scale_factor(self):
        small = baidu_like(scale=1.0)
        big = baidu_like(scale=2.0)
        assert big.link_capacity("bj1", "sh1") == 2 * small.link_capacity(
            "bj1", "sh1"
        )
        assert (
            big.servers["bj1-s0"].uplink == 2 * small.servers["bj1-s0"].uplink
        )

    def test_runs_a_multicast(self):
        topo = baidu_like(servers_per_dc=2)
        job = MulticastJob(
            job_id="j",
            src_dc="bj1",
            dst_dcs=("sh1", "gz1", "bj2"),
            total_bytes=40 * MB,
            block_size=4 * MB,
        )
        job.bind(topo)
        result = Simulation(
            topo, [job], BDSController(seed=0), SimConfig(max_cycles=1000), seed=0
        ).run()
        assert result.all_complete


class TestGlobalRegions:
    def test_shape(self):
        topo = global_regions(servers_per_dc=2)
        assert len(topo.dcs) == 6
        assert len(topo.servers) == 12

    def test_continental_links_fatter(self):
        topo = global_regions()
        assert topo.link_capacity("us-west", "us-east") == 3 * topo.link_capacity(
            "us-west", "eu-west"
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            global_regions(servers_per_dc=0)
        with pytest.raises(ValueError):
            baidu_like(scale=0)


class TestDumbbell:
    def test_no_direct_left_right_link(self):
        topo = dumbbell()
        route = topo.route_dcs("left", "right")
        assert len(route) == 3  # must pass through a transit DC
        assert route[1] in ("transit-a", "transit-b")

    def test_both_transits_usable(self):
        """BDS should use both bottleneck-disjoint transit paths at once."""
        topo = dumbbell(servers_per_end=4, transit_capacity=10 * MBps)
        job = MulticastJob(
            job_id="j",
            src_dc="left",
            dst_dcs=("right",),
            total_bytes=120 * MB,
            block_size=4 * MB,
            relay_dcs=("transit-a", "transit-b"),
        )
        job.bind(topo)
        result = Simulation(
            topo, [job], BDSController(seed=0), SimConfig(max_cycles=2000), seed=0
        ).run()
        assert result.all_complete
        # Using both 10 MB/s transit paths, 120 MB needs ~6 s + pipeline;
        # a single path would need at least 12 s.
        assert result.completion_time("j") < 12.0 + 9.0

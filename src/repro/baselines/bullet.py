"""Bullet: an overlay mesh with RanSub random subsets (Kostic et al., SOSP'03).

Bullet lets geo-distributed nodes self-organize into a mesh: each node
periodically receives a *random subset* of other nodes (the RanSub
mechanism) and picks sending peers from it; peers then send **disjoint**
data, so a receiver never downloads the same block twice. The key contrast
with BDS (paper §7): decisions remain local, so while the mesh avoids
duplicate transmission, it still cannot balance global block availability
or avoid uplink hotspots.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.baselines.base import OverlayStrategy
from repro.net.simulator import ClusterView, TransferDirective
from repro.overlay.blocks import Block
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive

BlockId = Tuple[str, int]


class BulletStrategy(OverlayStrategy):
    """Mesh overlay: RanSub peer sampling + disjoint block partitions."""

    uses_controller_rates = False
    respects_safety_threshold = False

    def __init__(
        self,
        ransub_size: int = 10,
        num_peers: int = 4,
        refresh_interval: int = 5,
        blocks_per_peer: int = 8,
        seed: SeedLike = None,
    ) -> None:
        """
        ``ransub_size``: size of the random subset delivered per epoch.
        ``num_peers``: sending peers a node keeps from that subset.
        ``refresh_interval``: cycles between RanSub epochs.
        ``blocks_per_peer``: request batch size per sender per cycle.
        """
        check_positive("ransub_size", ransub_size)
        check_positive("num_peers", num_peers)
        check_positive("refresh_interval", refresh_interval)
        check_positive("blocks_per_peer", blocks_per_peer)
        self.ransub_size = ransub_size
        self.num_peers = num_peers
        self.refresh_interval = refresh_interval
        self.blocks_per_peer = blocks_per_peer
        self._rng = make_rng(seed)
        # (job_id, receiver) -> current sending peer set.
        self._peers: Dict[Tuple[str, str], List[str]] = {}
        self._last_epoch = -1

    def decide(self, view: ClusterView) -> List[TransferDirective]:
        epoch = view.cycle // self.refresh_interval
        refresh = epoch != self._last_epoch
        self._last_epoch = epoch

        directives: List[TransferDirective] = []
        for job in view.jobs:
            by_server = self.missing_blocks_by_server(view, job)
            for dst_server, missing in by_server.items():
                key = (job.job_id, dst_server)
                if refresh or key not in self._peers:
                    self._peers[key] = self._ransub_peers(view, dst_server, missing)
                partition = self._partition_disjoint(
                    view, dst_server, missing, self._peers[key]
                )
                directives.extend(
                    self.directives_for_partition(job, dst_server, partition)
                )
        return directives

    def _ransub_peers(
        self, view: ClusterView, dst_server: str, missing: List[Block]
    ) -> List[str]:
        """One RanSub epoch: sample a random subset, keep useful peers.

        The subset is drawn from all servers holding at least one missing
        block (the summary-ticket information RanSub distributes); the node
        keeps up to ``num_peers`` of them.
        """
        holders: Set[str] = set()
        for block in missing:
            holders.update(view.eligible_sources(block.block_id))
        holders.discard(dst_server)
        candidates = sorted(holders)
        if not candidates:
            return []
        size = min(self.ransub_size, len(candidates))
        subset_idx = self._rng.choice(len(candidates), size=size, replace=False)
        subset = [candidates[int(i)] for i in subset_idx]
        return subset[: self.num_peers]

    def _partition_disjoint(
        self,
        view: ClusterView,
        dst_server: str,
        missing: List[Block],
        peers: List[str],
    ) -> Dict[str, List[Block]]:
        """Assign each missing block to exactly one peer that holds it.

        Blocks rotate across peers (round-robin over eligible ones) so the
        data received from different senders is disjoint — Bullet's core
        mechanism.
        """
        partition: Dict[str, List[Block]] = {p: [] for p in peers}
        if not peers:
            return {}
        turn = 0
        for block in sorted(missing):
            eligible = [
                p
                for p in peers
                if view.store.has(p, block.block_id)
                and len(partition[p]) < self.blocks_per_peer
            ]
            if not eligible:
                continue
            pick = eligible[turn % len(eligible)]
            partition[pick].append(block)
            turn += 1
        return {p: blocks for p, blocks in partition.items() if blocks}

"""Data blocks: the fine-grained transfer unit of BDS (§4.1).

BDS splits every bulk file into fixed-size blocks (2 MB by default in the
paper) so that different blocks can ride different bottleneck-disjoint
overlay paths simultaneously. This module provides the block abstraction,
file splitting, and the block-merging helper used by the controller's
"blocks merging" optimization (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.utils.units import MB
from repro.utils.validation import check_positive

DEFAULT_BLOCK_SIZE = 2 * MB


@dataclass(frozen=True, order=True)
class Block:
    """One block of a multicast job's data file.

    Blocks are ordered by ``(job_id, index)`` so that sorted containers and
    deterministic iteration are cheap.
    """

    job_id: str
    index: int
    size: float
    # Globally unique identifier (hashable). Precomputed: the id is read
    # several times per block per cycle on the controller's hot paths,
    # where a property allocating a fresh tuple each call shows up.
    block_id: Tuple[str, int] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        check_positive("size", self.size)
        if self.index < 0:
            raise ValueError("block index must be >= 0")
        object.__setattr__(self, "block_id", (self.job_id, self.index))


def split_into_blocks(
    job_id: str, total_bytes: float, block_size: float = DEFAULT_BLOCK_SIZE
) -> List[Block]:
    """Split ``total_bytes`` into fixed-size blocks; the tail may be smaller.

    >>> [b.size for b in split_into_blocks("j", 5 * MB, 2 * MB)] == [
    ...     2 * MB, 2 * MB, 1 * MB]
    True
    """
    check_positive("total_bytes", total_bytes)
    check_positive("block_size", block_size)
    blocks: List[Block] = []
    remaining = float(total_bytes)
    index = 0
    while remaining > 1e-9:
        size = min(block_size, remaining)
        blocks.append(Block(job_id=job_id, index=index, size=size))
        remaining -= size
        index += 1
    return blocks


def group_by_pair(
    assignments: Mapping[Tuple[str, int], Tuple[str, str]],
    blocks: Mapping[Tuple[str, int], Block],
) -> Dict[Tuple[str, str], List[Block]]:
    """Merge blocks that share a (source server, destination server) pair.

    This is the §5.1 "blocks merging" optimization: a merged group becomes a
    single subtask / TCP connection, shrinking both the controller's decision
    space and the number of parallel connections. ``assignments`` maps a
    block id to its chosen (src, dst) pair.
    """
    groups: Dict[Tuple[str, str], List[Block]] = {}
    for block_id, pair in assignments.items():
        groups.setdefault(pair, []).append(blocks[block_id])
    for members in groups.values():
        members.sort()
    return groups


def total_size(blocks: Iterable[Block]) -> float:
    """Sum of block sizes in bytes."""
    return sum(b.size for b in blocks)

"""Per-server agents: the stateless local endpoints of BDS (§3, §5.1).

In the real system an agent checks local state each cycle (which blocks
arrived, server health, disk failures), reports it to the controller through
the Agent Monitor, and later enforces the controller's bandwidth allocations
with ``tc``/``wget --limit-rate``. In the reproduction the data plane runs
inside the simulator, so the agent's job is to produce *status snapshots*
(including their control-plane delay) and to expose health state that the
failure schedule toggles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple

from repro.net.topology import Server

BlockId = Tuple[str, int]


@dataclass(frozen=True)
class AgentSnapshot:
    """One status report from an agent to the controller.

    ``blocks`` is the set of blocks fully received; ``healthy`` reflects
    server/disk state; ``report_delay`` is the one-way control-plane delay
    this report experienced.
    """

    server_id: str
    dc: str
    blocks: FrozenSet[BlockId]
    healthy: bool
    report_delay: float


class ServerAgent:
    """Local agent state for one server."""

    def __init__(self, server: Server) -> None:
        self.server = server
        self.healthy = True

    @property
    def server_id(self) -> str:
        return self.server.server_id

    @property
    def dc(self) -> str:
        return self.server.dc

    def fail(self) -> None:
        """Mark the server down (crash / disk failure)."""
        self.healthy = False

    def recover(self) -> None:
        self.healthy = True

    def snapshot(self, blocks: Set[BlockId], report_delay: float) -> AgentSnapshot:
        """Build the status report the Agent Monitor will forward."""
        return AgentSnapshot(
            server_id=self.server_id,
            dc=self.dc,
            blocks=frozenset(blocks),
            healthy=self.healthy,
            report_delay=report_delay,
        )

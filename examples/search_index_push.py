#!/usr/bin/env python3
"""Scenario: pushing a fresh web-search index to every serving region.

This is the paper's motivating workload (§1): search indexing alone is
89.2 % multicast traffic at Baidu. A new index build must reach all
serving DCs quickly, *without* trampling the latency-sensitive query
traffic sharing the same WAN links.

The example runs the same push twice — once with the uncoordinated
receiver-driven overlay (Gingko) and once with BDS — under identical
diurnal online traffic, and compares both completion time and interference
(cycles in which total link utilization crossed the 80 % safety threshold).

Run:  python examples/search_index_push.py
"""

from repro import (
    BackgroundTraffic,
    BDSController,
    GingkoStrategy,
    MulticastJob,
    SimConfig,
    Simulation,
    Topology,
)
from repro.net.background import delay_inflation
from repro.utils.units import GB, MB, MBps, format_duration


def build_scenario(seed: int):
    """8 serving regions; modest WAN links carrying real online traffic."""
    topology = Topology.full_mesh(
        num_dcs=8,
        servers_per_dc=4,
        wan_capacity=120 * MBps,
        uplink=25 * MBps,
    )
    index = MulticastJob(
        job_id="web-index",
        src_dc="dc0",  # the build cluster
        dst_dcs=tuple(f"dc{i}" for i in range(1, 8)),
        total_bytes=1.2 * GB,
        block_size=4 * MB,
    )
    index.bind(topology)
    background = BackgroundTraffic(
        base_fraction=0.35, diurnal_fraction=0.25, noise_fraction=0.04, seed=seed
    )
    return topology, index, background


def run(strategy_name: str, seed: int = 7):
    topology, index, background = build_scenario(seed)
    strategy = (
        BDSController(seed=seed)
        if strategy_name == "bds"
        else GingkoStrategy(seed=seed)
    )
    simulation = Simulation(
        topology=topology,
        jobs=[index],
        strategy=strategy,
        config=SimConfig(cycle_seconds=3.0, record_link_stats=True),
        background=background,
        seed=seed,
    )
    result = simulation.run()

    capacities = topology.resource_capacities()
    violations = 0
    worst_inflation = 1.0
    for stats in result.cycle_stats:
        for link, bulk in stats.link_bulk_usage.items():
            total = (bulk + stats.link_online_usage.get(link, 0.0)) / capacities[link]
            if total > 0.8:
                violations += 1
            worst_inflation = max(worst_inflation, delay_inflation(total))
    return result, violations, worst_inflation


def main() -> None:
    print("pushing a 1.2 GB search index to 7 serving regions\n")
    for name in ("gingko", "bds"):
        result, violations, inflation = run(name)
        completion = result.completion_time("web-index")
        print(f"[{name}]")
        print(f"  completion            : {format_duration(completion)}")
        print(f"  threshold violations  : {violations} link-cycles")
        print(f"  worst delay inflation : {inflation:.1f}x on online traffic\n")


if __name__ == "__main__":
    main()

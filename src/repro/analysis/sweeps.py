"""Parameter sweeps: completion time as a function of one scenario knob.

The paper's evaluation sweeps block size and cycle length (Fig. 12b/12c);
downstream users additionally want capacity planning: *how much WAN/NIC
bandwidth or how many servers does a replication deadline require?* This
module provides a small declarative sweep harness reused by the Fig. 12
experiments, the ablations, and the capacity-planning example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.runner import run_simulation
from repro.net.simulator import SimResult
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.rng import SeedLike


@dataclass
class SweepPoint:
    """One sweep sample: the knob value and the resulting metrics."""

    value: float
    completion_time: float
    cycles: int
    all_complete: bool


@dataclass
class SweepResult:
    """All samples of one sweep, in the order they were run."""

    knob: str
    strategy: str
    points: List[SweepPoint] = field(default_factory=list)

    def values(self) -> List[float]:
        return [p.value for p in self.points]

    def completion_times(self) -> List[float]:
        return [p.completion_time for p in self.points]

    def cheapest_meeting_deadline(self, deadline_s: float) -> Optional[SweepPoint]:
        """The smallest knob value whose run met the deadline.

        Assumes the sweep was run in ascending knob order and that larger
        values don't hurt (monotone capacity knobs); returns ``None`` when
        no sampled value meets the deadline.
        """
        for point in self.points:
            if point.all_complete and point.completion_time <= deadline_s:
                return point
        return None


ScenarioFactory = Callable[[float], Tuple[Topology, List[MulticastJob]]]


def sweep(
    knob: str,
    values: Sequence[float],
    scenario: ScenarioFactory,
    strategy: str = "bds",
    cycle_seconds: float = 3.0,
    max_cycles: int = 100_000,
    seed: SeedLike = 0,
) -> SweepResult:
    """Run ``scenario(value)`` for every knob value and collect metrics.

    ``scenario`` builds a *fresh* topology and bound job list per value —
    sharing state between runs is the classic sweep bug, so the factory
    contract makes it impossible.
    """
    if not values:
        raise ValueError("sweep needs at least one value")
    result = SweepResult(knob=knob, strategy=strategy)
    for value in values:
        topo, jobs = scenario(float(value))
        if not jobs:
            raise ValueError(f"scenario produced no jobs for {knob}={value}")
        run = run_simulation(
            topo,
            jobs,
            strategy,
            cycle_seconds=cycle_seconds,
            max_cycles=max_cycles,
            seed=seed,
        )
        completion = (
            max(run.job_completion.values()) if run.all_complete else float("inf")
        )
        result.points.append(
            SweepPoint(
                value=float(value),
                completion_time=completion,
                cycles=run.cycles_run,
                all_complete=run.all_complete,
            )
        )
    return result


def compare_sweeps(
    knob: str,
    values: Sequence[float],
    scenario: ScenarioFactory,
    strategies: Sequence[str],
    seed: SeedLike = 0,
    cycle_seconds: float = 3.0,
) -> Dict[str, SweepResult]:
    """The same sweep under several strategies (for crossover hunting)."""
    return {
        strategy: sweep(
            knob,
            values,
            scenario,
            strategy=strategy,
            seed=seed,
            cycle_seconds=cycle_seconds,
        )
        for strategy in strategies
    }

"""Fig. 10 — BDS keeps bulk traffic under the dynamic bandwidth cap.

Paper: with a 10 GB/s limit configured for bulk transfers, BDS's actual
usage stays below the limit for the whole transfer. Here the limit is the
dynamic residual budget (threshold x capacity - online traffic) and BDS's
recorded bulk usage never crosses it.
"""

from repro.analysis.experiments import exp_interference
from repro.analysis.reporting import format_table, sparkline
from repro.utils.units import GB


def test_fig10_bds_respects_cap(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_interference("bds", file_bytes=2 * GB, seed=6),
        rounds=1,
        iterations=1,
    )
    headroom = [
        result.threshold - u for u in result.total_utilization
    ]
    rows = [
        ["cycles above threshold", str(result.violations), "0"],
        ["peak total utilization", f"{max(result.total_utilization):.0%}", "< 80%"],
        ["peak delay inflation", f"{max(result.inflation):.1f}x", "1x"],
    ]
    report(
        "\n[Fig. 10] BDS bulk usage under the dynamic cap\n"
        + format_table(["metric", "measured", "paper"], rows)
        + "\n  bulk usage over time: "
        + sparkline(result.bulk_utilization)
        + "\n  total (bulk+online) : "
        + sparkline(result.total_utilization)
    )
    assert result.violations == 0
    assert min(headroom) >= -1e-9

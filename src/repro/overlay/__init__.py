"""Overlay data plane: blocks, possession index, jobs, agents, messaging."""

from repro.overlay.blocks import Block, split_into_blocks, group_by_pair
from repro.overlay.store import DeliveryRecord, PossessionIndex
from repro.overlay.job import MulticastJob
from repro.overlay.agent import AgentSnapshot, ServerAgent
from repro.overlay.monitor import AgentMonitor, FeedbackLoopSample

__all__ = [
    "Block",
    "split_into_blocks",
    "group_by_pair",
    "DeliveryRecord",
    "PossessionIndex",
    "MulticastJob",
    "AgentSnapshot",
    "ServerAgent",
    "AgentMonitor",
    "FeedbackLoopSample",
]

"""Per-cycle control overhead and TCP re-establishment cost (Fig. 12c)."""

import pytest

from repro.baselines.base import OverlayStrategy
from repro.net.simulator import SimConfig, Simulation, TransferDirective
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


class AlwaysSend(OverlayStrategy):
    """Pull every pending block straight from any holder, no rate caps."""

    def decide(self, view):
        directives = []
        for job in view.jobs:
            for block, _dc, server in view.pending_deliveries(job):
                sources = view.eligible_sources(block.block_id)
                if not sources or server in sources:
                    continue
                directives.append(
                    TransferDirective(
                        job_id=job.job_id,
                        block_ids=(block.block_id,),
                        src_server=sorted(sources)[0],
                        dst_server=server,
                    )
                )
        return directives


def scenario():
    topo = Topology.full_mesh(
        num_dcs=2, servers_per_dc=1, wan_capacity=1 * GB, uplink=10 * MBps
    )
    job = MulticastJob(
        job_id="j", src_dc="dc0", dst_dcs=("dc1",),
        total_bytes=30 * MB, block_size=30 * MB,
    )
    job.bind(topo)
    return topo, job


class TestConfigValidation:
    def test_negative_overheads_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(control_overhead_seconds=-1)
        with pytest.raises(ValueError):
            SimConfig(flow_setup_seconds=-0.5)

    def test_overhead_must_leave_a_window(self):
        with pytest.raises(ValueError, match="transfer window"):
            SimConfig(cycle_seconds=1.0, control_overhead_seconds=1.0)


class TestOverheadEffects:
    def test_no_overhead_baseline(self):
        topo, job = scenario()
        result = Simulation(topo, [job], AlwaysSend(), SimConfig()).run()
        # 30 MB at 10 MB/s = 3 s = one full cycle.
        assert result.completion_time("j") == pytest.approx(3.0)

    def test_control_overhead_slows_transfer(self):
        topo, job = scenario()
        config = SimConfig(control_overhead_seconds=1.0)
        result = Simulation(topo, [job], AlwaysSend(), config).run()
        # Each cycle only transfers for 2 s (minus setup in cycle 0):
        # needs a second cycle.
        assert result.completion_time("j") > 3.0

    def test_flow_setup_charged_once_for_stable_pairs(self):
        topo, job = scenario()
        # 60 MB over a stable pair: setup cost hits only the first cycle.
        job2 = MulticastJob(
            job_id="j", src_dc="dc0", dst_dcs=("dc1",),
            total_bytes=59 * MB, block_size=59 * MB,
        )
        job2.bind(topo)
        config = SimConfig(flow_setup_seconds=0.3)
        result = Simulation(topo, [job2], AlwaysSend(), config).run()
        # Ideal 5.9 s; with one 0.3 s setup it must still finish within
        # cycle 2 (<= 9 s), not pay setup every cycle.
        assert result.completion_time("j") <= 9.0
        bytes_cycle0 = result.cycle_stats[0].bytes_transferred
        bytes_cycle1 = result.cycle_stats[1].bytes_transferred
        assert bytes_cycle1 > bytes_cycle0  # no setup on the reused pair

    def test_new_pair_pays_setup_again(self):
        topo = Topology.full_mesh(
            num_dcs=2, servers_per_dc=2, wan_capacity=1 * GB, uplink=10 * MBps
        )
        job = MulticastJob(
            job_id="j", src_dc="dc0", dst_dcs=("dc1",),
            total_bytes=20 * MB, block_size=10 * MB,
        )
        job.bind(topo)
        config = SimConfig(flow_setup_seconds=0.5)
        result = Simulation(topo, [job], AlwaysSend(), config).run()
        assert result.all_complete
        # Both (src, dst) pairs are fresh in cycle 0: each loses 0.5 s of
        # the 3-second window -> at most 25 MB moves, not the full 20+20.
        assert result.cycle_stats[0].bytes_transferred <= 2 * 10 * MB

    def test_delivery_time_includes_setup_offset(self):
        topo, job = scenario()
        config = SimConfig(flow_setup_seconds=1.0)
        result = Simulation(topo, [job], AlwaysSend(), config).run()
        # 30 MB needs 3 s of transfer; only 2 s fit in cycle 0 after setup,
        # so completion lands in cycle 1.
        assert result.completion_time("j") > 3.0
        assert result.all_complete

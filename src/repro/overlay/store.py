"""The possession index: who holds which blocks, cluster-wide.

This is the controller's "global view of data delivery status" (§3).
Besides membership queries it maintains the aggregates the scheduling and
evaluation logic needs:

* per-block duplicate counts (for rarest-first scheduling, §4.3);
* per-DC possession (for completion detection);
* delivery provenance (whether each delivered block came from the origin DC
  or from an overlay path — the Fig. 13c measurement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.overlay.blocks import Block

BlockId = Tuple[str, int]


@dataclass(frozen=True)
class DeliveryRecord:
    """Provenance of one block delivery."""

    block_id: BlockId
    src_server: str
    dst_server: str
    time: float
    from_origin_dc: bool


_EMPTY_HOLDERS: Set[str] = set()


class PossessionIndex:
    """Tracks block possession per server with O(1) updates and lookups.

    ``epoch`` counts mutations (seeds, deliveries, drops). Read-side caches
    — most importantly the per-cycle :class:`~repro.net.cycle_cache.
    CycleCache` — key their validity on it: any possession change bumps the
    epoch and invalidates every memoized rarity/holder query.
    """

    def __init__(self, server_dc: Mapping[str, str]) -> None:
        # server id -> DC name; fixed for the lifetime of the index.
        self._server_dc: Dict[str, str] = dict(server_dc)
        self._holders: Dict[BlockId, Set[str]] = {}
        self._server_blocks: Dict[str, Set[BlockId]] = {
            s: set() for s in self._server_dc
        }
        self._dc_counts: Dict[Tuple[str, BlockId], int] = {}
        self.deliveries: List[DeliveryRecord] = []
        self.epoch: int = 0

    # -- updates --------------------------------------------------------------

    def seed(self, server_id: str, blocks: Iterable[Block]) -> None:
        """Place initial copies (no delivery records; they were never sent)."""
        for block in blocks:
            self._add(block.block_id, server_id)

    def record_delivery(
        self,
        block: Block,
        src_server: str,
        dst_server: str,
        time: float,
        origin_dc: str,
    ) -> Optional[DeliveryRecord]:
        """Register a completed transfer of ``block`` to ``dst_server``.

        Returns the provenance record, or ``None`` if the destination
        already held the block (duplicate delivery is a no-op).
        """
        if self.has(dst_server, block.block_id):
            return None
        self._add(block.block_id, dst_server)
        record = DeliveryRecord(
            block_id=block.block_id,
            src_server=src_server,
            dst_server=dst_server,
            time=time,
            from_origin_dc=self.dc_of(src_server) == origin_dc,
        )
        self.deliveries.append(record)
        return record

    def _add(self, block_id: BlockId, server_id: str) -> None:
        if server_id not in self._server_dc:
            raise KeyError(f"unknown server {server_id!r}")
        holders = self._holders.setdefault(block_id, set())
        if server_id in holders:
            return
        holders.add(server_id)
        self._server_blocks[server_id].add(block_id)
        dc = self._server_dc[server_id]
        key = (dc, block_id)
        self._dc_counts[key] = self._dc_counts.get(key, 0) + 1
        self.epoch += 1

    def drop_server(self, server_id: str) -> None:
        """Remove all copies on a failed server (disk loss)."""
        for block_id in list(self._server_blocks.get(server_id, ())):
            self._holders[block_id].discard(server_id)
            dc = self._server_dc[server_id]
            key = (dc, block_id)
            self._dc_counts[key] -= 1
            if self._dc_counts[key] == 0:
                del self._dc_counts[key]
            self.epoch += 1
        self._server_blocks[server_id] = set()

    # -- queries ---------------------------------------------------------------

    def dc_of(self, server_id: str) -> str:
        return self._server_dc[server_id]

    def has(self, server_id: str, block_id: BlockId) -> bool:
        return block_id in self._server_blocks.get(server_id, ())

    def holders(self, block_id: BlockId) -> Set[str]:
        """Servers currently holding the block.

        Returns the *live* internal set — callers must treat it as
        read-only (the per-cycle hot paths call this for every pending
        block; copying here dominated steady-state allocation churn).
        """
        return self._holders.get(block_id, _EMPTY_HOLDERS)

    def duplicate_count(self, block_id: BlockId) -> int:
        """Number of copies cluster-wide (the §4.3 rarity measure)."""
        return len(self._holders.get(block_id, ()))

    def blocks_on(self, server_id: str) -> Set[BlockId]:
        return set(self._server_blocks.get(server_id, ()))

    def dc_has_block(self, dc: str, block_id: BlockId) -> bool:
        return self._dc_counts.get((dc, block_id), 0) > 0

    def dc_copy_count(self, dc: str, block_id: BlockId) -> int:
        return self._dc_counts.get((dc, block_id), 0)

    # -- evaluation helpers -----------------------------------------------------

    def origin_fraction_by_server(self) -> Dict[str, float]:
        """Per destination server: fraction of deliveries from the origin DC.

        The Fig. 13c statistic. Servers that never received anything are
        omitted.
        """
        totals: Dict[str, int] = {}
        from_origin: Dict[str, int] = {}
        for record in self.deliveries:
            totals[record.dst_server] = totals.get(record.dst_server, 0) + 1
            if record.from_origin_dc:
                from_origin[record.dst_server] = (
                    from_origin.get(record.dst_server, 0) + 1
                )
        return {
            server: from_origin.get(server, 0) / count
            for server, count in totals.items()
        }

"""Ablation — routing backends: greedy water-filling vs FPTAS vs exact LP.

DESIGN.md calls out the routing backend as a key design choice: the paper
uses an FPTAS for ε-optimality in near real-time; this repo defaults to a
round-robin greedy for raw speed and keeps the LP as the optimality
yardstick. The ablation measures both decision runtime and the resulting
completion time on the same scenario.
"""

import time

from repro.analysis.reporting import format_table
from repro.analysis.runner import run_simulation
from repro.core import BDSConfig, BDSController
from repro.core.scheduling import RarestFirstScheduler
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps

BACKENDS = ("greedy", "fptas", "lp")


def _scenario():
    topo = Topology.full_mesh(
        num_dcs=5, servers_per_dc=3, wan_capacity=200 * MBps, uplink=10 * MBps
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2", "dc3", "dc4"),
        total_bytes=96 * MB,
        block_size=4 * MB,
    )
    job.bind(topo)
    return topo, job


def _run_all():
    rows = {}
    for backend in BACKENDS:
        # Decision runtime on one snapshot.
        topo, job = _scenario()
        controller = BDSController(config=BDSConfig(routing_backend=backend))
        sim = Simulation(topo, [job], controller, SimConfig())
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        started = time.perf_counter()
        controller.router.route(view, selections)
        decision_s = time.perf_counter() - started

        # End-to-end completion time.
        topo, job = _scenario()
        result = run_simulation(
            topo, [job], "bds", seed=1,
            config=BDSConfig(routing_backend=backend),
        )
        rows[backend] = (decision_s, result.completion_time("j"))
    return rows


def test_ablation_router_backends(benchmark, report):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    table = [
        [backend, f"{dec * 1000:.1f}ms", f"{comp:.0f}s"]
        for backend, (dec, comp) in rows.items()
    ]
    report(
        "\n[Ablation] Routing backend: decision runtime vs completion time\n"
        + format_table(["backend", "decision", "completion"], table)
    )
    # All backends complete correctly and within a couple of cycles of the
    # best; the greedy must be the fastest to decide.
    completions = [comp for _dec, comp in rows.values()]
    assert max(completions) <= min(completions) * 1.8 + 6.0
    assert rows["greedy"][0] <= rows["lp"][0]

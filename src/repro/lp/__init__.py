"""Linear-programming machinery used by BDS's routing step (§4.4).

Contains a small LP model builder over ``scipy.optimize.linprog``, a
path-based multi-commodity-flow (MCF) model, and the Garg–Könemann /
Fleischer fully-polynomial-time approximation scheme (FPTAS) the paper uses
to get ε-optimal routing in milliseconds instead of solving the LP exactly.
"""

from repro.lp.model import LinearProgram, LPSolution, LPError
from repro.lp.mcf import Commodity, PathMCF, MCFResult, solve_lp_incidence
from repro.lp.incidence import PathIncidence, build_incidence
from repro.lp.fptas import (
    max_multicommodity_flow,
    FPTASResult,
    FPTASWarmState,
)
from repro.lp.fptas_legacy import legacy_max_multicommodity_flow

__all__ = [
    "LinearProgram",
    "LPSolution",
    "LPError",
    "Commodity",
    "PathMCF",
    "MCFResult",
    "solve_lp_incidence",
    "PathIncidence",
    "build_incidence",
    "max_multicommodity_flow",
    "FPTASResult",
    "FPTASWarmState",
    "legacy_max_multicommodity_flow",
]

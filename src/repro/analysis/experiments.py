"""One entry point per table/figure of the paper's evaluation.

Every function builds its scenario (scaled down from the paper's testbed —
see EXPERIMENTS.md for the scaling table), runs the relevant strategies,
and returns a plain result object. The benchmarks in ``benchmarks/`` wrap
these with ``pytest-benchmark`` and print the paper-shaped rows/series;
the examples reuse the smaller ones directly.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import summarize
from repro.analysis.runner import make_strategy, run_simulation
from repro.baselines.ideal import ideal_server_times
from repro.core import BDSController
from repro.core.formulation import StandardLPRouter
from repro.net.background import BackgroundTraffic, delay_inflation
from repro.net.failures import FailureSchedule
from repro.net.latency import LatencyModel
from repro.net.paths import throughput_ratio_samples
from repro.net.simulator import SimConfig, SimResult, Simulation
from repro.net.topology import Topology, wan_key
from repro.overlay.job import MulticastJob
from repro.overlay.monitor import AgentMonitor
from repro.utils.rng import SeedLike, make_rng
from repro.utils.units import GB, MB, MBps
from repro.workload.generator import WorkloadGenerator


def _median(xs: Sequence[float]) -> float:
    return sorted(xs)[len(xs) // 2]


def _require(outcome) -> SimResult:
    """Unwrap a :class:`~repro.analysis.parallel.RunOutcome` or raise.

    Experiment batches are all-or-nothing: a failed run means the figure
    cannot be produced, so surface the worker's error with the run label.
    """
    if not outcome.ok:
        raise RuntimeError(f"run {outcome.spec.label!r} failed: {outcome.error}")
    return outcome.result


# ---------------------------------------------------------------------------
# Table 1 / Fig. 2 — workload characterization
# ---------------------------------------------------------------------------


@dataclass
class WorkloadCharacterization:
    """Outputs of the §2.1 measurement reproduction."""

    share_by_app: Dict[str, float]
    overall_share: float
    destination_fractions: List[float]
    sizes_bytes: List[float]
    num_requests: int


def exp_workload_characterization(
    num_requests: int = 1265, num_dcs: int = 30, seed: SeedLike = 1
) -> WorkloadCharacterization:
    """Reproduce Table 1 and both Fig. 2 CDFs from a sampled trace.

    Defaults match the paper's trace: 1265 transfers across 30 DCs over
    seven days.
    """
    generator = WorkloadGenerator(
        [f"dc{i}" for i in range(num_dcs)], seed=seed
    )
    requests = generator.generate(count=num_requests)
    app_bytes: Dict[str, float] = {}
    multicast_bytes: Dict[str, float] = {}
    fractions: List[float] = []
    sizes: List[float] = []
    for request in requests:
        app_bytes[request.app] = app_bytes.get(request.app, 0.0) + request.size_bytes
        if request.is_multicast:
            multicast_bytes[request.app] = (
                multicast_bytes.get(request.app, 0.0) + request.size_bytes
            )
            fractions.append(len(request.dst_dcs) / num_dcs)
            sizes.append(request.size_bytes)
    share_by_app = {
        app: multicast_bytes.get(app, 0.0) / total
        for app, total in app_bytes.items()
        if total > 0
    }
    overall = sum(multicast_bytes.values()) / sum(app_bytes.values())
    return WorkloadCharacterization(
        share_by_app=share_by_app,
        overall_share=overall,
        destination_fractions=fractions,
        sizes_bytes=sizes,
        num_requests=len(requests),
    )


# ---------------------------------------------------------------------------
# Fig. 3 — the illustrative two-path example
# ---------------------------------------------------------------------------


@dataclass
class Fig3Result:
    """Completion times (seconds) of the three Fig. 3 strategies."""

    direct_s: float
    chain_s: float
    bds_s: float


def fig3_topology() -> Topology:
    """The Fig. 3 scenario: three DCs with asymmetric WAN capacities.

    The shape of the example needs (a) a thin path from A to C, (b) a
    fatter relayed route through B, so the intelligent overlay can ship
    most blocks A→B→C while the thin direct path carries the rest.
    Capacities: A—B 3 GB/s, A—C 1.5 GB/s, B—C 3 GB/s; server NICs are
    fat (6 GB/s) so the WAN links are the bottlenecks, as in the figure.
    """
    topo = Topology()
    for name in ("A", "B", "C"):
        topo.add_dc(name)
    for dc in ("A", "B", "C"):
        for j in range(2):
            topo.add_server(f"{dc}-s{j}", dc, uplink=6 * GB, downlink=6 * GB)
    topo.add_bidirectional_link("A", "B", 3 * GB)
    topo.add_bidirectional_link("A", "C", 1.5 * GB)
    topo.add_bidirectional_link("B", "C", 3 * GB)
    return topo


def fig3_job(block_size: float = 2 * GB) -> MulticastJob:
    """36 GB from A to B and C, split into six 6 GB blocks in the paper;
    we default to 2 GB blocks for a little more scheduling freedom."""
    return MulticastJob(
        job_id="fig3",
        src_dc="A",
        dst_dcs=("B", "C"),
        total_bytes=36 * GB,
        block_size=block_size,
    )


def exp_fig3_illustrative(
    cycle_seconds: float = 1.0,
    seed: SeedLike = 3,
    workers: int = 1,
    cache=None,
    progress: bool = False,
) -> Fig3Result:
    """Run direct vs chain vs BDS on the Fig. 3 scenario.

    The paper's example has no bandwidth reservation, so the safety
    threshold is lifted to 100 % here.
    """
    from repro.analysis.parallel import RunSpec, run_many

    def scenario() -> Tuple[Topology, List[MulticastJob]]:
        topo = fig3_topology()
        job = fig3_job()
        job.bind(topo)
        return topo, [job]

    specs = [
        RunSpec(
            strategy=name,
            seed=seed,
            scenario=scenario,
            label=f"fig3:{name}",
            cycle_seconds=cycle_seconds,
            safety_threshold=1.0,
        )
        for name in ("direct", "chain", "bds")
    ]
    outcomes = run_many(specs, workers=workers, cache=cache, progress=progress)
    times = {
        outcome.spec.strategy: _require(outcome).completion_time("fig3")
        for outcome in outcomes
    }
    return Fig3Result(
        direct_s=times["direct"], chain_s=times["chain"], bds_s=times["bds"]
    )


# ---------------------------------------------------------------------------
# Fig. 4 — bottleneck-disjointness in the wild
# ---------------------------------------------------------------------------


@dataclass
class Fig4Result:
    ratios: List[float]
    fraction_disjoint: float  # fraction with ratio != 1 (tolerance 1%)


def exp_fig4_disjointness(
    num_dcs: int = 12,
    servers_per_dc: int = 4,
    num_samples: int = 2000,
    seed: SeedLike = 4,
) -> Fig4Result:
    """Sample BW(A→C)/BW(A→b→C) over random triples (Fig. 4)."""
    topo = Topology.random_mesh(
        num_dcs=num_dcs,
        servers_per_dc=servers_per_dc,
        wan_capacity_range=(1 * GB, 10 * GB),
        uplink_range=(100 * MBps, 2 * GB),
        seed=seed,
    )
    ratios = throughput_ratio_samples(topo, num_samples, seed=seed)
    disjoint = sum(1 for r in ratios if abs(r - 1.0) > 0.01) / len(ratios)
    return Fig4Result(ratios=ratios, fraction_disjoint=disjoint)


# ---------------------------------------------------------------------------
# Fig. 5 — Gingko vs ideal per-server completion times
# ---------------------------------------------------------------------------


@dataclass
class Fig5Result:
    gingko_times: List[float]  # per destination server, seconds
    ideal_times: List[float]
    median_ratio: float  # median(gingko) / median(ideal)


def exp_fig5_gingko_vs_ideal(
    servers_per_dc: int = 32,
    file_bytes: float = 1 * GB,
    nic_rate: float = 2.5 * MBps,  # 20 Mbps, the paper's per-server budget
    block_size: float = 4 * MB,
    seed: SeedLike = 5,
) -> Fig5Result:
    """One source DC, two destination DCs, striped file (scaled Fig. 5)."""
    topo = Topology.full_mesh(
        num_dcs=3,
        servers_per_dc=servers_per_dc,
        wan_capacity=10 * GB,
        uplink=nic_rate,
    )
    job = MulticastJob(
        job_id="fig5",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2"),
        total_bytes=file_bytes,
        block_size=block_size,
    )
    job.bind(topo)
    result = run_simulation(topo, [job], "gingko", seed=seed)
    gingko_times = result.server_completion_times("fig5")
    ideal = ideal_server_times(topo, job)
    ideal_times = list(ideal.values())
    return Fig5Result(
        gingko_times=gingko_times,
        ideal_times=ideal_times,
        median_ratio=_median(gingko_times) / max(_median(ideal_times), 1e-9),
    )


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 10 — interference and bandwidth separation
# ---------------------------------------------------------------------------


@dataclass
class InterferenceResult:
    times: List[float]
    total_utilization: List[float]  # online + bulk, as capacity fraction
    online_utilization: List[float]
    bulk_utilization: List[float]
    inflation: List[float]
    threshold: float
    violations: int  # cycles with total utilization above the threshold


def _interference_run(
    strategy_name: str,
    seed: SeedLike,
    file_bytes: float,
    cycle_seconds: float,
) -> Tuple[SimResult, Topology]:
    topo = Topology.full_mesh(
        num_dcs=2,
        servers_per_dc=6,
        wan_capacity=100 * MBps,
        uplink=40 * MBps,
    )
    job = MulticastJob(
        job_id="bulk",
        src_dc="dc0",
        dst_dcs=("dc1",),
        total_bytes=file_bytes,
        block_size=4 * MB,
    )
    job.bind(topo)
    background = BackgroundTraffic(
        base_fraction=0.35, diurnal_fraction=0.25, noise_fraction=0.05, seed=seed
    )
    strategy = make_strategy(strategy_name, seed=seed)
    sim = Simulation(
        topology=topo,
        jobs=[job],
        strategy=strategy,
        config=SimConfig(
            cycle_seconds=cycle_seconds,
            record_link_stats=True,
            links_of_interest=(wan_key("dc0", "dc1"),),
        ),
        background=background,
        seed=seed,
    )
    return sim.run(), topo


def exp_interference(
    strategy_name: str = "gingko",
    file_bytes: float = 2 * GB,
    cycle_seconds: float = 3.0,
    seed: SeedLike = 6,
) -> InterferenceResult:
    """Fig. 6 (uncoordinated bulk) / Fig. 10 (BDS) on one WAN link."""
    result, topo = _interference_run(strategy_name, seed, file_bytes, cycle_seconds)
    link = wan_key("dc0", "dc1")
    capacity = topo.links[link].capacity
    times, total, online, bulk, inflation = [], [], [], [], []
    threshold = 0.8
    violations = 0
    for stats in result.cycle_stats:
        o = stats.link_online_usage.get(link, 0.0) / capacity
        b = stats.link_bulk_usage.get(link, 0.0) / capacity
        u = o + b
        times.append(stats.time)
        online.append(o)
        bulk.append(b)
        total.append(u)
        inflation.append(delay_inflation(u, threshold))
        if u > threshold + 1e-9:
            violations += 1
    return InterferenceResult(
        times=times,
        total_utilization=total,
        online_utilization=online,
        bulk_utilization=bulk,
        inflation=inflation,
        threshold=threshold,
        violations=violations,
    )


# ---------------------------------------------------------------------------
# Fig. 9 — BDS vs Gingko (pilot-deployment shape)
# ---------------------------------------------------------------------------


@dataclass
class Fig9Result:
    bds_server_times: List[float]
    gingko_server_times: List[float]
    median_speedup: float
    by_app: Dict[str, Dict[str, Tuple[float, float]]]  # app -> name -> (mean, std)
    timeseries: Dict[str, List[float]]  # name -> per-day mean completion


def _fig9_topology(servers_per_dc: int) -> Topology:
    return Topology.full_mesh(
        num_dcs=11,
        servers_per_dc=servers_per_dc,
        wan_capacity=500 * MBps,
        uplink=25 * MBps,
    )


def exp_fig9_bds_vs_gingko(
    file_bytes: float = 2 * GB,
    servers_per_dc: int = 10,
    block_size: float = 4 * MB,
    seed: SeedLike = 9,
    days: int = 5,
    workers: int = 1,
    cache=None,
    progress: bool = False,
) -> Fig9Result:
    """BDS vs Gingko: one large multicast (9a), three size classes (9b),
    and a per-day timeseries (9c), all on a 1-source/10-destination mesh.

    The full panel — 2 headline runs + 12 size-class runs + ``2*days``
    timeseries runs — is submitted as one :func:`run_many` batch, so it
    fans out across every (sub-figure, strategy, seed) cell at once.
    """
    from repro.analysis.parallel import RunSpec, run_many

    def make_scenario(size: float):
        def _scenario() -> Tuple[Topology, List[MulticastJob]]:
            topo = _fig9_topology(servers_per_dc)
            job = MulticastJob(
                job_id="fig9",
                src_dc="dc0",
                dst_dcs=tuple(f"dc{i}" for i in range(1, 11)),
                total_bytes=size,
                block_size=block_size,
            )
            job.bind(topo)
            return topo, [job]

        return _scenario

    sizes = {
        "large": file_bytes,
        "medium": file_bytes / 4,
        "small": file_bytes / 16,
    }

    specs: List[RunSpec] = []
    keys: List[Tuple[str, ...]] = []

    def add(key: Tuple[str, ...], name: str, size: float, run_seed: int) -> None:
        specs.append(
            RunSpec(
                strategy=name,
                seed=run_seed,
                scenario=make_scenario(size),
                label="fig9:" + ":".join(key),
            )
        )
        keys.append(key)

    # (a) the headline CDF.
    for name in ("bds", "gingko"):
        add(("a", name), name, file_bytes, 90)
    # (b) three applications: large / medium / small data volumes.
    for app, size in sizes.items():
        for name in ("gingko", "bds"):
            for rep in range(2):
                add(("b", app, name, str(rep)), name, size, 100 + rep)
    # (c) one job per day for ``days`` days.
    for day in range(days):
        for name in ("gingko", "bds"):
            add(("c", str(day), name), name, file_bytes / 2, 200 + day)

    outcomes = run_many(specs, workers=workers, cache=cache, progress=progress)
    by_key = {
        key: _require(outcome) for key, outcome in zip(keys, outcomes)
    }

    bds_times = by_key[("a", "bds")].server_completion_times("fig9")
    gingko_times = by_key[("a", "gingko")].server_completion_times("fig9")
    speedup = _median(gingko_times) / max(_median(bds_times), 1e-9)

    by_app: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for app in sizes:
        by_app[app] = {}
        for name in ("gingko", "bds"):
            samples = [
                by_key[("b", app, name, str(rep))].completion_time("fig9")
                for rep in range(2)
            ]
            stats = summarize(samples)
            by_app[app][name] = (stats.mean, stats.std)

    timeseries: Dict[str, List[float]] = {"gingko": [], "bds": []}
    for day in range(days):
        for name in ("gingko", "bds"):
            timeseries[name].append(
                by_key[("c", str(day), name)].completion_time("fig9")
            )

    return Fig9Result(
        bds_server_times=bds_times,
        gingko_server_times=gingko_times,
        median_speedup=speedup,
        by_app=by_app,
        timeseries=timeseries,
    )


# ---------------------------------------------------------------------------
# Table 3 — BDS vs Bullet vs Akamai in three setups
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    # setup -> strategy -> completion time (seconds).
    times: Dict[str, Dict[str, float]]


TABLE3_SETUPS: Dict[str, Dict[str, float]] = {
    # Scaled-down analogues of the paper's three setups (see EXPERIMENTS.md):
    # baseline: 10 TB to 11 DCs x 100 servers at 20 MB/s
    "baseline": {
        "file_bytes": 1.2 * GB,
        "servers_per_dc": 5,
        "rate": 20 * MBps,
    },
    # large-scale: 100 TB, 1000 servers per DC
    "large-scale": {
        "file_bytes": 4.8 * GB,
        "servers_per_dc": 10,
        "rate": 20 * MBps,
    },
    # rate-limited: baseline with 5 MB/s server NICs
    "rate-limited": {
        "file_bytes": 1.2 * GB,
        "servers_per_dc": 5,
        "rate": 5 * MBps,
    },
}


def exp_table3_overlay_comparison(
    setups: Optional[Sequence[str]] = None,
    strategies: Sequence[str] = ("bullet", "akamai", "bds"),
    block_size: float = 8 * MB,
    seed: SeedLike = 11,
    workers: int = 1,
    cache=None,
    progress: bool = False,
) -> Table3Result:
    """Completion times of BDS/Bullet/Akamai in the Table 3 setups.

    The setup × strategy matrix runs as one :func:`run_many` batch.
    """
    from repro.analysis.parallel import RunSpec, run_many

    def make_scenario(params: Dict[str, float]):
        def _scenario() -> Tuple[Topology, List[MulticastJob]]:
            topo = Topology.full_mesh(
                num_dcs=12,
                servers_per_dc=int(params["servers_per_dc"]),
                wan_capacity=1 * GB,
                uplink=params["rate"],
            )
            job = MulticastJob(
                job_id="table3",
                src_dc="dc0",
                dst_dcs=tuple(f"dc{i}" for i in range(1, 12)),
                total_bytes=params["file_bytes"],
                block_size=block_size,
            )
            job.bind(topo)
            return topo, [job]

        return _scenario

    chosen = setups or tuple(TABLE3_SETUPS)
    specs = []
    cells = []
    for setup_name in chosen:
        scenario = make_scenario(TABLE3_SETUPS[setup_name])
        for strategy in strategies:
            specs.append(
                RunSpec(
                    strategy=strategy,
                    seed=seed,
                    scenario=scenario,
                    label=f"table3:{setup_name}:{strategy}",
                )
            )
            cells.append((setup_name, strategy))
    outcomes = run_many(specs, workers=workers, cache=cache, progress=progress)
    times: Dict[str, Dict[str, float]] = {name: {} for name in chosen}
    for (setup_name, strategy), outcome in zip(cells, outcomes):
        times[setup_name][strategy] = _require(outcome).completion_time("table3")
    return Table3Result(times=times)


# ---------------------------------------------------------------------------
# Fig. 11 — scalability micro-benchmarks
# ---------------------------------------------------------------------------


@dataclass
class Fig11aResult:
    block_counts: List[int]
    runtimes_s: List[float]


def _controller_state(num_blocks: int, seed: SeedLike = 0) -> Tuple[
    Simulation, BDSController
]:
    """A mid-flight multicast state with ``num_blocks`` outstanding blocks."""
    topo = Topology.full_mesh(
        num_dcs=4, servers_per_dc=8, wan_capacity=1 * GB, uplink=50 * MBps
    )
    controller = BDSController(seed=seed)
    job = MulticastJob(
        job_id="scale",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2", "dc3"),
        total_bytes=num_blocks * MB,
        block_size=1 * MB,
    )
    job.bind(topo)
    sim = Simulation(topology=topo, jobs=[job], strategy=controller, seed=seed)
    return sim, controller


def exp_fig11a_controller_runtime(
    block_counts: Sequence[int] = (1000, 5000, 10_000, 50_000, 100_000),
    seed: SeedLike = 0,
) -> Fig11aResult:
    """Controller decision time as a function of outstanding blocks.

    One scheduling + routing pass over a snapshot view, per block count.
    Blocks are counted per pending (block, destination DC) delivery to
    match the paper's "simultaneous outstanding data blocks".
    """
    runtimes: List[float] = []
    counts: List[int] = []
    for num_blocks in block_counts:
        # Each block appears on 3 destination DCs; divide to get the file.
        sim, controller = _controller_state(max(1, num_blocks // 3), seed=seed)
        view = sim.snapshot_view()
        started = _time.perf_counter()
        controller.decide(view)
        runtimes.append(_time.perf_counter() - started)
        counts.append(num_blocks)
    return Fig11aResult(block_counts=counts, runtimes_s=runtimes)


@dataclass
class Fig11bcResult:
    network_delays_s: List[float]
    feedback_delays_s: List[float]


def exp_fig11bc_delays(
    num_requests: int = 5000,
    num_dcs: int = 10,
    servers_per_dc: int = 7,
    seed: SeedLike = 0,
) -> Fig11bcResult:
    """Network-delay CDF (11b) and feedback-loop-delay CDF (11c).

    The feedback-loop samples come from a *live* instrumented run: the
    simulator attaches an :class:`AgentMonitor` and measures, per cycle,
    status collection + the controller's actual decision runtime + the
    decision push.
    """
    latency = LatencyModel(seed=seed)
    rng = make_rng(seed)
    dcs = [f"dc{i}" for i in range(num_dcs)]
    network: List[float] = []
    for _ in range(num_requests):
        a, b = rng.choice(num_dcs, size=2, replace=False)
        network.append(latency.sample_delay(dcs[int(a)], dcs[int(b)]))

    topo = Topology.full_mesh(
        num_dcs=num_dcs,
        servers_per_dc=servers_per_dc,
        wan_capacity=GB,
        uplink=4 * MBps,
    )
    job = MulticastJob(
        job_id="loop",
        src_dc="dc0",
        dst_dcs=tuple(f"dc{i}" for i in range(1, num_dcs)),
        total_bytes=1.5 * GB,
        block_size=2 * MB,
    )
    job.bind(topo)
    monitor = AgentMonitor(controller_dc="dc0", latency=latency)
    from repro.core import BDSController

    result = Simulation(
        topology=topo,
        jobs=[job],
        strategy=BDSController(seed=seed),
        config=SimConfig(max_cycles=200),
        agent_monitor=monitor,
        seed=seed,
    ).run()
    feedback = [sample.total for sample in result.feedback_samples]
    return Fig11bcResult(network_delays_s=network, feedback_delays_s=feedback)


# ---------------------------------------------------------------------------
# Fig. 12 — fault tolerance and parameter sensitivity
# ---------------------------------------------------------------------------


@dataclass
class Fig12aResult:
    blocks_per_cycle: List[int]
    agent_fail_cycle: int
    controller_fail_cycle: int
    controller_recover_cycle: int


def exp_fig12a_fault_tolerance(
    file_bytes: float = 600 * MB,
    block_size: float = 2 * MB,
    seed: SeedLike = 12,
) -> Fig12aResult:
    """The Fig. 12a failure schedule: agent at 10, controller 20–30.

    NIC rates are sized so the transfer spans the full 45-cycle window the
    figure shows (the failures land mid-transfer, as in the paper).
    """
    topo = Topology.full_mesh(
        num_dcs=3, servers_per_dc=6, wan_capacity=200 * MBps, uplink=1.2 * MBps
    )
    job = MulticastJob(
        job_id="fault",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2"),
        total_bytes=file_bytes,
        block_size=block_size,
    )
    job.bind(topo)
    schedule = FailureSchedule.paper_fig12a(agent="dc1-s0")
    result = run_simulation(
        topo,
        [job],
        "bds",
        seed=seed,
        failures=schedule,
        max_cycles=45,
    )
    return Fig12aResult(
        blocks_per_cycle=result.blocks_per_cycle(),
        agent_fail_cycle=10,
        controller_fail_cycle=20,
        controller_recover_cycle=30,
    )


@dataclass
class Fig12bResult:
    # block size label -> per destination DC completion time (minutes order).
    per_dc_times: Dict[str, List[float]]


def exp_fig12b_block_size(
    file_bytes: float = 1 * GB,
    small_block: float = 2 * MB,
    large_block: float = 64 * MB,
    seed: SeedLike = 12,
    workers: int = 1,
    cache=None,
    progress: bool = False,
) -> Fig12bResult:
    """Completion per destination DC for small vs large blocks (Fig. 12b)."""
    from repro.analysis.parallel import RunSpec, run_many

    def make_scenario(block_size: float):
        def _scenario() -> Tuple[Topology, List[MulticastJob]]:
            topo = Topology.full_mesh(
                num_dcs=11,
                servers_per_dc=4,
                wan_capacity=500 * MBps,
                uplink=25 * MBps,
            )
            job = MulticastJob(
                job_id="blk",
                src_dc="dc0",
                dst_dcs=tuple(f"dc{i}" for i in range(1, 11)),
                total_bytes=file_bytes,
                block_size=block_size,
            )
            job.bind(topo)
            return topo, [job]

        return _scenario

    labelled = (("2M/blk", small_block), ("64M/blk", large_block))
    specs = [
        RunSpec(
            strategy="bds",
            seed=seed,
            scenario=make_scenario(block_size),
            label=f"fig12b:{label}",
        )
        for label, block_size in labelled
    ]
    outcomes = run_many(specs, workers=workers, cache=cache, progress=progress)
    per_dc: Dict[str, List[float]] = {}
    for (label, _), outcome in zip(labelled, outcomes):
        result = _require(outcome)
        per_dc[label] = [
            result.dc_completion[("blk", f"dc{i}")] for i in range(1, 11)
        ]
    return Fig12bResult(per_dc_times=per_dc)


@dataclass
class Fig12cResult:
    cycle_lengths_s: List[float]
    completion_times_s: List[float]


def exp_fig12c_cycle_length(
    cycle_lengths: Sequence[float] = (0.5, 1, 2, 3, 5, 10, 20, 40, 60, 95),
    file_bytes: float = 1 * GB,
    seed: SeedLike = 12,
    workers: int = 1,
    cache=None,
    progress: bool = False,
) -> Fig12cResult:
    """Completion time vs update-cycle length (Fig. 12c).

    Longer cycles adapt more slowly and pay more per-cycle quantization;
    very short cycles pay the per-cycle overheads the paper lists —
    status collection + decision push (``control_overhead_seconds``) and
    TCP re-establishment for flows that change endpoints
    (``flow_setup_seconds``) — both modeled inside the simulator.
    """
    from repro.analysis.parallel import RunSpec, run_many

    def scenario() -> Tuple[Topology, List[MulticastJob]]:
        topo = Topology.full_mesh(
            num_dcs=6, servers_per_dc=4, wan_capacity=500 * MBps, uplink=25 * MBps
        )
        job = MulticastJob(
            job_id="cyc",
            src_dc="dc0",
            dst_dcs=tuple(f"dc{i}" for i in range(1, 6)),
            total_bytes=file_bytes,
            block_size=8 * MB,
        )
        job.bind(topo)
        return topo, [job]

    specs = [
        RunSpec(
            strategy="bds",
            seed=seed,
            scenario=scenario,
            label=f"fig12c:dt={dt}",
            cycle_seconds=dt,
            control_overhead_seconds=min(0.3, dt * 0.55),
            flow_setup_seconds=0.2,
        )
        for dt in cycle_lengths
    ]
    outcomes = run_many(specs, workers=workers, cache=cache, progress=progress)
    times = [_require(outcome).completion_time("cyc") for outcome in outcomes]
    return Fig12cResult(
        cycle_lengths_s=list(cycle_lengths), completion_times_s=times
    )


# ---------------------------------------------------------------------------
# Fig. 13 — in-depth analysis
# ---------------------------------------------------------------------------


@dataclass
class Fig13aResult:
    block_counts: List[int]
    bds_runtimes_s: List[float]
    standard_lp_runtimes_s: List[float]


def exp_fig13a_runtime_comparison(
    block_counts: Sequence[int] = (200, 400, 800, 1600, 3200),
    seed: SeedLike = 13,
) -> Fig13aResult:
    """Decision runtime: decoupled BDS vs the joint standard LP (Fig. 13a)."""
    bds_times: List[float] = []
    lp_times: List[float] = []
    for count in block_counts:
        sim, controller = _controller_state(max(1, count // 3), seed=seed)
        view = sim.snapshot_view()
        selections = controller.scheduler.select(view)

        started = _time.perf_counter()
        controller.router.route(view, selections)
        bds_times.append(_time.perf_counter() - started)

        lp_router = StandardLPRouter()
        started = _time.perf_counter()
        lp_router.route(view, selections)
        lp_times.append(_time.perf_counter() - started)
    return Fig13aResult(
        block_counts=list(block_counts),
        bds_runtimes_s=bds_times,
        standard_lp_runtimes_s=lp_times,
    )


@dataclass
class Fig13bResult:
    block_counts: List[int]
    bds_times_s: List[float]
    standard_lp_times_s: List[float]


def exp_fig13b_near_optimality(
    block_counts: Sequence[int] = (50, 100, 200, 400),
    rate: float = 20 * MBps,
    seed: SeedLike = 13,
    workers: int = 1,
    cache=None,
    progress: bool = False,
) -> Fig13bResult:
    """Completion time of BDS vs the standard LP at small scale (Fig. 13b).

    Paper setup: 2 DCs, 4 servers, 20 MB/s server rates, varying blocks.
    """
    from repro.analysis.parallel import RunSpec, run_many

    def make_scenario(count: int):
        def _scenario() -> Tuple[Topology, List[MulticastJob]]:
            topo = Topology.full_mesh(
                num_dcs=2, servers_per_dc=2, wan_capacity=1 * GB, uplink=rate
            )
            job = MulticastJob(
                job_id="opt",
                src_dc="dc0",
                dst_dcs=("dc1",),
                total_bytes=count * 2 * MB,
                block_size=2 * MB,
            )
            job.bind(topo)
            return topo, [job]

        return _scenario

    pairs = [
        (count, strategy_name)
        for count in block_counts
        for strategy_name in ("bds", "bds-standard-lp")
    ]
    specs = [
        RunSpec(
            strategy=strategy_name,
            seed=seed,
            scenario=make_scenario(count),
            label=f"fig13b:{strategy_name}:blocks={count}",
            cycle_seconds=3.0,
        )
        for count, strategy_name in pairs
    ]
    outcomes = run_many(specs, workers=workers, cache=cache, progress=progress)
    bds_times: List[float] = []
    lp_times: List[float] = []
    for (count, strategy_name), outcome in zip(pairs, outcomes):
        bucket = bds_times if strategy_name == "bds" else lp_times
        bucket.append(_require(outcome).completion_time("opt"))
    return Fig13bResult(
        block_counts=list(block_counts),
        bds_times_s=bds_times,
        standard_lp_times_s=lp_times,
    )


@dataclass
class Fig13cResult:
    origin_fractions: List[float]  # per destination server
    fraction_servers_below_20pct: float


def exp_fig13c_origin_fraction(
    file_bytes: float = 2 * GB,
    servers_per_dc: int = 8,
    seed: SeedLike = 13,
) -> Fig13cResult:
    """Fraction of blocks each server fetched from the origin DC (Fig. 13c)."""
    topo = Topology.full_mesh(
        num_dcs=10,
        servers_per_dc=servers_per_dc,
        wan_capacity=500 * MBps,
        uplink=10 * MBps,
    )
    job = MulticastJob(
        job_id="origin",
        src_dc="dc0",
        dst_dcs=tuple(f"dc{i}" for i in range(1, 10)),
        total_bytes=file_bytes,
        block_size=2 * MB,
    )
    job.bind(topo)
    result = run_simulation(topo, [job], "bds", seed=seed)
    fractions = list(result.store.origin_fraction_by_server().values())
    below = sum(1 for f in fractions if f <= 0.2) / max(len(fractions), 1)
    return Fig13cResult(
        origin_fractions=fractions, fraction_servers_below_20pct=below
    )


# ---------------------------------------------------------------------------
# Hot-path benchmark — incremental cycle-state engine vs the legacy scans
# ---------------------------------------------------------------------------


@dataclass
class PerfHotpathsResult:
    """A/B measurement of the incremental cycle-state engine.

    ``run_*`` fields time a multi-cycle steady-state simulation at the
    largest Fig. 11a scale (≈``state_pairs`` (block, destination) pairs of
    controller state, most already replicated — the regime where the
    controller ticks every ΔT over a largely-complete state).
    ``decide_*`` fields time one cold controller decision over a fully
    pending state of the same size (the classic Fig. 11a point).
    """

    state_pairs: int
    cycles: int
    run_legacy_s: float
    run_incremental_s: float
    run_speedup: float
    decide_legacy_s: float
    decide_incremental_s: float
    decide_speedup: float
    legacy_stage_totals: Dict[str, float]
    incremental_stage_totals: Dict[str, float]
    cache_stats: Dict[str, int]
    identical_results: bool


def _hotpath_sim(
    num_blocks: int,
    incremental: bool,
    seed: SeedLike,
    steady_state: bool,
    vectorized: bool = True,
    max_blocks_per_cycle: int = 0,
    vectorized_flow: bool = True,
) -> Simulation:
    """The A/B scenario: 4-DC mesh, one destination DC on a thin link.

    With ``steady_state`` two destination DCs are pre-seeded complete and
    the thin one is 95 % complete, so the run spends its cycles on a
    small trickle of remaining work while the controller's total state
    keeps its full size — the case the incremental engine targets.
    ``vectorized`` selects the possession-store backend (see
    ``SimConfig.vectorized_store``); ``vectorized_flow`` the data-plane
    kernels (``SimConfig.vectorized_flow``); ``max_blocks_per_cycle``
    caps the controller's per-cycle selection (the Eq. 3 work bound used
    by the 10^6-pair ΔT-budget demonstration).
    """
    dcs = [f"dc{i}" for i in range(4)]
    topo = Topology()
    for dc in dcs:
        topo.add_dc(dc)
        for s in range(8):
            topo.add_server(
                f"{dc}-s{s}", dc, uplink=50 * MBps, downlink=50 * MBps
            )
    for a in dcs:
        for b in dcs:
            if a == b:
                continue
            topo.add_link(a, b, 5 * MBps if b == "dc3" else 1 * GB)
    job = MulticastJob(
        job_id="scale",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2", "dc3"),
        total_bytes=num_blocks * MB,
        block_size=1 * MB,
    )
    job.bind(topo)
    pre_seeded: Dict[str, List] = {}
    if steady_state:
        for dc in ("dc1", "dc2", "dc3"):
            for block in job.blocks:
                if dc == "dc3" and block.index % 20 == 0:
                    continue  # the 5 % tail dc3 is still missing
                server = job.assigned_server(dc, block.block_id)
                pre_seeded.setdefault(server, []).append(block)
    controller_config = None
    if max_blocks_per_cycle:
        from repro.core.config import BDSConfig

        controller_config = BDSConfig(max_blocks_per_cycle=max_blocks_per_cycle)
    return Simulation(
        topology=topo,
        jobs=[job],
        strategy=BDSController(config=controller_config, seed=seed),
        seed=seed,
        config=SimConfig(
            incremental_engine=incremental,
            vectorized_store=vectorized,
            vectorized_flow=vectorized_flow,
        ),
        pre_seeded=pre_seeded or None,
    )


def exp_perf_hotpaths(
    num_blocks: int = 33_334, seed: SeedLike = 0
) -> PerfHotpathsResult:
    """Time the legacy engine against the incremental one (both ways).

    The default ``num_blocks`` puts ≈10^5 (block, destination) pairs in
    the controller state — the largest Fig. 11a scalability point. The
    multi-cycle run must produce bit-identical completion metrics and
    per-cycle delivery counts in both modes; ``identical_results``
    records the comparison.
    """
    # Both arms run the dict-of-sets store + scalar scheduler: this
    # experiment isolates the incremental cycle-state engine, and the
    # array-native control plane (measured by exp_scheduler_kernel) must
    # not inflate either side of the comparison.
    walls: Dict[bool, float] = {}
    results: Dict[bool, SimResult] = {}
    for incremental in (False, True):
        sim = _hotpath_sim(
            num_blocks,
            incremental,
            seed=seed,
            steady_state=True,
            vectorized=False,
        )
        started = _time.perf_counter()
        results[incremental] = sim.run()
        walls[incremental] = _time.perf_counter() - started
        if incremental:
            cache_stats = sim._cycle_cache.stats()
    legacy, incr = results[False], results[True]
    identical = (
        legacy.job_completion == incr.job_completion
        and legacy.server_completion == incr.server_completion
        and legacy.dc_completion == incr.dc_completion
        and legacy.blocks_per_cycle() == incr.blocks_per_cycle()
    )

    decide: Dict[bool, float] = {}
    for incremental in (False, True):
        sim = _hotpath_sim(
            num_blocks,
            incremental,
            seed=seed,
            steady_state=False,
            vectorized=False,
        )
        view = sim.snapshot_view()
        started = _time.perf_counter()
        sim.strategy.decide(view)
        decide[incremental] = _time.perf_counter() - started

    return PerfHotpathsResult(
        state_pairs=3 * num_blocks,
        cycles=incr.cycles_run,
        run_legacy_s=walls[False],
        run_incremental_s=walls[True],
        run_speedup=walls[False] / max(walls[True], 1e-9),
        decide_legacy_s=decide[False],
        decide_incremental_s=decide[True],
        decide_speedup=decide[False] / max(decide[True], 1e-9),
        legacy_stage_totals=legacy.stage_time_totals(),
        incremental_stage_totals=incr.stage_time_totals(),
        cache_stats=cache_stats,
        identical_results=identical,
    )


# ---------------------------------------------------------------------------
# Scheduler-kernel benchmark — array-native control plane vs the scalar path
# ---------------------------------------------------------------------------


@dataclass
class SchedulerKernelResult:
    """A/B measurement of the array-native control plane.

    Both arms run the incremental cycle-state engine; they differ only in
    ``SimConfig.vectorized_store`` — the scalar arm uses the dict-of-sets
    possession index and the per-candidate scheduler/router loops, the
    vectorized arm the packed bitset matrix, the candidate-array kernel,
    and the batched interned-id router build. ``schedule_*`` / ``decide_*``
    are per-stage wall-clock totals over the steady-state run (the regime
    where the controller ticks every ΔT over a mostly-replicated state);
    ``cold_decide_*`` times one decision over a fully pending state.

    The ``budget_*`` fields record the 10^6-pair ΔT-budget demonstration:
    one cold controller decision over ``budget_pairs`` pending (block,
    destination) pairs with the Eq. 3-style per-cycle selection cap
    ``budget_cap``, which must fit the paper's 3 s update interval.
    """

    state_pairs: int
    cycles: int
    run_scalar_s: float
    run_vectorized_s: float
    run_speedup: float
    schedule_scalar_s: float
    schedule_vectorized_s: float
    schedule_speedup: float
    decide_scalar_s: float
    decide_vectorized_s: float
    decide_speedup: float
    cold_decide_scalar_s: float
    cold_decide_vectorized_s: float
    cold_decide_speedup: float
    scalar_stage_totals: Dict[str, float]
    vectorized_stage_totals: Dict[str, float]
    identical_results: bool
    budget_pairs: int = 0
    budget_cap: int = 0
    budget_decide_s: float = 0.0
    budget_directives: int = 0
    budget_within_dt: bool = True


def exp_scheduler_kernel(
    num_blocks: int = 33_334,
    seed: SeedLike = 0,
    budget_blocks: int = 0,
    budget_cap: int = 20_000,
) -> SchedulerKernelResult:
    """Time the scalar control plane against the array-native one.

    The default ``num_blocks`` puts ~10^5 (block, destination) pairs in
    the controller state (the largest Fig. 11a point). The steady-state
    runs must produce bit-identical completion metrics, per-cycle
    delivery counts, and byte counts in both modes (``identical_results``
    also covers the run fingerprints). ``budget_blocks`` > 0 additionally
    times one cold 3×``budget_blocks``-pair decision on the vectorized
    plane with a ``budget_cap`` selection cap — the 10^6-pair ΔT-budget
    demonstration.
    """
    walls: Dict[bool, float] = {}
    results: Dict[bool, SimResult] = {}
    for vectorized in (False, True):
        sim = _hotpath_sim(
            num_blocks,
            incremental=True,
            seed=seed,
            steady_state=True,
            vectorized=vectorized,
        )
        started = _time.perf_counter()
        results[vectorized] = sim.run()
        walls[vectorized] = _time.perf_counter() - started
    scalar, vec = results[False], results[True]
    identical = (
        scalar.job_completion == vec.job_completion
        and scalar.server_completion == vec.server_completion
        and scalar.dc_completion == vec.dc_completion
        and scalar.blocks_per_cycle() == vec.blocks_per_cycle()
        and scalar.fingerprint() == vec.fingerprint()
    )
    scalar_stages = scalar.stage_time_totals()
    vec_stages = vec.stage_time_totals()

    cold: Dict[bool, float] = {}
    for vectorized in (False, True):
        sim = _hotpath_sim(
            num_blocks,
            incremental=True,
            seed=seed,
            steady_state=False,
            vectorized=vectorized,
        )
        view = sim.snapshot_view()
        started = _time.perf_counter()
        sim.strategy.decide(view)
        cold[vectorized] = _time.perf_counter() - started

    budget_pairs = 0
    budget_s = 0.0
    budget_directives = 0
    if budget_blocks:
        sim = _hotpath_sim(
            budget_blocks,
            incremental=True,
            seed=seed,
            steady_state=False,
            vectorized=True,
            max_blocks_per_cycle=budget_cap,
        )
        budget_pairs = 3 * budget_blocks
        view = sim.snapshot_view()
        started = _time.perf_counter()
        budget_directives = len(sim.strategy.decide(view))
        budget_s = _time.perf_counter() - started

    return SchedulerKernelResult(
        state_pairs=3 * num_blocks,
        cycles=vec.cycles_run,
        run_scalar_s=walls[False],
        run_vectorized_s=walls[True],
        run_speedup=walls[False] / max(walls[True], 1e-9),
        schedule_scalar_s=scalar_stages["schedule"],
        schedule_vectorized_s=vec_stages["schedule"],
        schedule_speedup=scalar_stages["schedule"]
        / max(vec_stages["schedule"], 1e-9),
        decide_scalar_s=scalar_stages["decide"],
        decide_vectorized_s=vec_stages["decide"],
        decide_speedup=scalar_stages["decide"]
        / max(vec_stages["decide"], 1e-9),
        cold_decide_scalar_s=cold[False],
        cold_decide_vectorized_s=cold[True],
        cold_decide_speedup=cold[False] / max(cold[True], 1e-9),
        scalar_stage_totals=scalar_stages,
        vectorized_stage_totals=vec_stages,
        identical_results=identical,
        budget_pairs=budget_pairs,
        budget_cap=budget_cap if budget_blocks else 0,
        budget_decide_s=budget_s,
        budget_directives=budget_directives,
        budget_within_dt=(budget_s <= 3.0) if budget_blocks else True,
    )


# ---------------------------------------------------------------------------
# Flow-kernel benchmark — array data plane vs the scalar rate/delivery path
# ---------------------------------------------------------------------------


@dataclass
class FlowScalePoint:
    """One synthetic A/B point at a fixed flow/event count.

    The waterfill and clip kernels run over the same random flow
    population; the delivery pass applies ``flows`` random (block,
    destination) events to two fresh possession indexes — one looping
    ``record_delivery`` per pair (the old simulator path), one through
    the batched ``record_deliveries``. ``combined_speedup`` is the
    rate+deliver aggregate: scalar seconds over vectorized seconds
    across all three kernels.
    """

    flows: int
    entries: int  # total flow×resource incidence entries
    resources: int
    waterfill_scalar_s: float
    waterfill_vectorized_s: float
    waterfill_speedup: float
    clip_scalar_s: float
    clip_vectorized_s: float
    clip_speedup: float
    deliver_events: int
    deliver_scalar_s: float
    deliver_vectorized_s: float
    deliver_speedup: float
    combined_speedup: float
    identical_results: bool


@dataclass
class FlowKernelResult:
    """A/B measurement of the vectorized data plane.

    ``scale_points`` isolate the rate and delivery kernels on synthetic
    inputs of increasing size (same flows/events, both implementations,
    exact equality asserted); ``kernel_combined_speedup`` — the largest
    point's rate+deliver aggregate — is the headline number. The
    ``sim_*``/``run_*`` fields time a whole delivery-heavy Gingko
    simulation with ``SimConfig(vectorized_flow=...)`` flipped — the
    scalar arm runs the dict waterfill and per-pair delivery
    application, the vectorized arm the array waterfill and the batched
    ``PossessionIndex.record_deliveries`` pass; ``combined_speedup`` is
    the same rate_resolve+deliver ratio measured end to end at the
    simulator's natural per-cycle scale (hundreds of flows, where the
    stage also carries the engine's flow bookkeeping common to both
    arms). The ``budget_*`` fields record the 10^6-pair all-stage
    demonstration: full steady-state cycles
    (view/schedule/route/rate/deliver) whose worst cycle must fit the
    paper's 3 s ΔT.
    """

    scale_points: List[FlowScalePoint]
    kernel_combined_speedup: float  # largest scale point's rate+deliver ratio
    sim_cycles: int
    sim_deliveries: int
    run_scalar_s: float
    run_vectorized_s: float
    run_speedup: float
    rate_scalar_s: float
    rate_vectorized_s: float
    rate_speedup: float
    deliver_scalar_s: float
    deliver_vectorized_s: float
    deliver_speedup: float
    apply_scalar_s: float
    apply_vectorized_s: float
    combined_speedup: float
    identical_results: bool
    budget_pairs: int = 0
    budget_cap: int = 0
    budget_cycles: int = 0
    budget_worst_cycle_s: float = 0.0
    budget_within_dt: bool = True


def _synthetic_flow_set(num_flows: int, num_resources: int, seed: SeedLike):
    """Bulk-generate a random flow population over a shared resource pool.

    Paths are 2–4 resources drawn uniformly (duplicates within a path are
    legal and counted identically by both kernels); demands and rate caps
    come from discrete choice sets so freezes cluster into a handful of
    levels, like real per-cycle flow sets do.
    """
    from repro.net.flow import Flow

    rng = make_rng(seed)
    keys = [("wan", f"n{i // 16}", f"p{i % 16}") for i in range(num_resources)]
    cap_choices = np.array([50.0, 120.0, 250.0, 600.0, 1500.0])
    capacities = {
        k: float(c)
        for k, c in zip(keys, rng.choice(cap_choices, size=num_resources))
    }
    lens = rng.integers(2, 5, size=num_flows)
    picks = rng.integers(0, num_resources, size=(num_flows, 4))
    demand_choices = np.array([0.5, 2.0, 8.0, np.inf])
    demands = rng.choice(demand_choices, size=num_flows)
    has_cap = rng.random(num_flows) < 0.25
    cap_vals = rng.choice(np.array([1.0, 4.0, 16.0]), size=num_flows)
    flows = [
        Flow(
            flow_id=i,
            resources=tuple(keys[j] for j in picks[i, : lens[i]]),
            demand=float(demands[i]),
            rate_cap=float(cap_vals[i]) if has_cap[i] else None,
        )
        for i in range(num_flows)
    ]
    requested = {
        i: float(r)
        for i, r in enumerate(
            rng.choice(np.array([0.2, 1.0, 3.0, 12.0]), size=num_flows)
        )
    }
    return flows, capacities, requested


def _delivery_ab(num_events: int, seed: SeedLike):
    """Apply ``num_events`` random deliveries per-pair vs batched.

    Both arms run matrix-backed :class:`~repro.overlay.store.
    PossessionIndex` instances; they differ only in looping
    ``record_delivery`` against one ``record_deliveries`` call — exactly
    the simulator's scalar/vectorized delivery-application split.
    Returns ``(scalar_s, vectorized_s, identical)`` where ``identical``
    covers the returned records, the provenance list, the epoch, and the
    raw possession/duplicate/per-DC count arrays.
    """
    from repro.overlay.blocks import Block
    from repro.overlay.store import PossessionIndex

    rng = make_rng(seed)
    server_dc = {f"dc{d}-s{s}": f"dc{d}" for d in range(20) for s in range(24)}
    servers = sorted(server_dc)
    num_blocks = max(1, num_events // 64)
    blocks = [Block(job_id="dp", index=i, size=1.0) for i in range(num_blocks)]
    bidx = rng.integers(0, num_blocks, size=num_events)
    sidx = rng.integers(0, len(servers), size=num_events)
    didx = rng.integers(0, len(servers), size=num_events)
    events = [
        (blocks[b], servers[s], servers[d], float(i), "dc0")
        for i, (b, s, d) in enumerate(zip(bidx, sidx, didx))
    ]

    seq = PossessionIndex(server_dc)
    started = _time.perf_counter()
    out_seq = [seq.record_delivery(*event) for event in events]
    t_seq = _time.perf_counter() - started

    bat = PossessionIndex(server_dc)
    started = _time.perf_counter()
    out_bat = bat.record_deliveries(events)
    t_bat = _time.perf_counter() - started

    identical = (
        out_seq == out_bat
        and seq.deliveries == bat.deliveries
        and seq.epoch == bat.epoch
        and np.array_equal(seq.matrix._flat, bat.matrix._flat)
        and np.array_equal(seq.matrix.dup, bat.matrix.dup)
        and np.array_equal(seq.matrix.dc_counts, bat.matrix.dc_counts)
    )
    return t_seq, t_bat, identical


def _flow_scale_point(num_flows: int, seed: SeedLike) -> FlowScalePoint:
    from repro.net.flow import (
        clip_rates_to_capacity_scalar,
        clip_rates_to_capacity_vectorized,
        max_min_fair_rates_scalar,
        max_min_fair_rates_vectorized,
    )

    num_resources = 96
    flows, capacities, requested = _synthetic_flow_set(
        num_flows, num_resources, seed
    )

    started = _time.perf_counter()
    wf_scalar = max_min_fair_rates_scalar(flows, capacities)
    t_wf_scalar = _time.perf_counter() - started

    started = _time.perf_counter()
    wf_vec = max_min_fair_rates_vectorized(flows, capacities)
    t_wf_vec = _time.perf_counter() - started

    started = _time.perf_counter()
    clip_scalar = clip_rates_to_capacity_scalar(flows, requested, capacities)
    t_clip_scalar = _time.perf_counter() - started

    started = _time.perf_counter()
    clip_vec = clip_rates_to_capacity_vectorized(flows, requested, capacities)
    t_clip_vec = _time.perf_counter() - started

    t_del_scalar, t_del_vec, del_identical = _delivery_ab(num_flows, seed)

    combined_scalar = t_wf_scalar + t_clip_scalar + t_del_scalar
    combined_vec = t_wf_vec + t_clip_vec + t_del_vec
    return FlowScalePoint(
        flows=num_flows,
        entries=sum(len(f.resources) for f in flows),
        resources=num_resources,
        waterfill_scalar_s=t_wf_scalar,
        waterfill_vectorized_s=t_wf_vec,
        waterfill_speedup=t_wf_scalar / max(t_wf_vec, 1e-9),
        clip_scalar_s=t_clip_scalar,
        clip_vectorized_s=t_clip_vec,
        clip_speedup=t_clip_scalar / max(t_clip_vec, 1e-9),
        deliver_events=num_flows,
        deliver_scalar_s=t_del_scalar,
        deliver_vectorized_s=t_del_vec,
        deliver_speedup=t_del_scalar / max(t_del_vec, 1e-9),
        combined_speedup=combined_scalar / max(combined_vec, 1e-9),
        identical_results=(
            wf_scalar == wf_vec and clip_scalar == clip_vec and del_identical
        ),
    )


def _flow_sim(
    num_blocks: int, vectorized_flow: bool, seed: SeedLike
) -> Simulation:
    """Delivery-heavy Gingko scenario: fat links, many receivers.

    Wide neighbor views and high fetch parallelism keep hundreds of
    concurrent flows and hundreds of block deliveries per cycle — the
    regime where the per-cycle rate resolution and delivery application
    show up in the simulator's stage clock.
    """
    from repro.baselines import GingkoStrategy

    topo = Topology.full_mesh(
        num_dcs=5, servers_per_dc=24, wan_capacity=10 * GB, uplink=100 * MBps
    )
    job = MulticastJob(
        job_id="dataplane",
        src_dc="dc0",
        dst_dcs=tuple(f"dc{i}" for i in range(1, 5)),
        total_bytes=num_blocks * MB,
        block_size=1 * MB,
    )
    job.bind(topo)
    return Simulation(
        topology=topo,
        jobs=[job],
        strategy=GingkoStrategy(
            view_size=48,
            epoch_cycles=1,
            fetch_parallelism=16,
            blocks_per_request=12,
            seed=seed,
        ),
        seed=seed,
        config=SimConfig(vectorized_flow=vectorized_flow),
    )


def exp_flow_kernel(
    scales: Sequence[int] = (6_000, 60_000, 600_000),
    sim_blocks: int = 4_000,
    seed: SeedLike = 0,
    budget_blocks: int = 0,
    budget_cap: int = 20_000,
    budget_cycles: int = 3,
) -> FlowKernelResult:
    """Time the scalar data plane against the array kernels.

    Synthetic points isolate the waterfill/clip at each scale in
    ``scales``; the simulation A/B flips only
    ``SimConfig.vectorized_flow`` and must be bit-identical
    (fingerprints, per-cycle deliveries, and the full provenance record
    list). ``budget_blocks`` > 0 additionally runs ``budget_cycles``
    full steady-state cycles over 3×``budget_blocks`` (block,
    destination) pairs on the all-vectorized plane with a ``budget_cap``
    selection cap, recording the worst single-cycle stage total against
    the 3 s ΔT.
    """
    points = [_flow_scale_point(n, seed) for n in scales]

    walls: Dict[bool, float] = {}
    results: Dict[bool, SimResult] = {}
    for vectorized_flow in (False, True):
        sim = _flow_sim(sim_blocks, vectorized_flow, seed=seed)
        started = _time.perf_counter()
        results[vectorized_flow] = sim.run()
        walls[vectorized_flow] = _time.perf_counter() - started
    scalar, vec = results[False], results[True]
    identical = (
        all(p.identical_results for p in points)
        and scalar.job_completion == vec.job_completion
        and scalar.server_completion == vec.server_completion
        and scalar.dc_completion == vec.dc_completion
        and scalar.blocks_per_cycle() == vec.blocks_per_cycle()
        and scalar.fingerprint() == vec.fingerprint()
        and scalar.store.deliveries == vec.store.deliveries
    )
    scalar_stages = scalar.stage_time_totals()
    vec_stages = vec.stage_time_totals()
    combined_scalar = scalar_stages["rate_resolve"] + scalar_stages["deliver"]
    combined_vec = vec_stages["rate_resolve"] + vec_stages["deliver"]

    budget_pairs = 0
    budget_worst = 0.0
    if budget_blocks:
        sim = _hotpath_sim(
            budget_blocks,
            incremental=True,
            seed=seed,
            steady_state=True,
            vectorized=True,
            max_blocks_per_cycle=budget_cap,
            vectorized_flow=True,
        )
        # The steady-state trickle would run for thousands of cycles on
        # the thin link; the demonstration only needs a few full cycles.
        sim.config.max_cycles = budget_cycles
        result = sim.run()
        budget_pairs = 3 * budget_blocks
        budget_worst = max(
            s.time_view_build
            + s.time_decide
            + s.time_schedule
            + s.time_route
            + s.time_rate_resolve
            + s.time_deliver
            for s in result.cycle_stats
        )

    return FlowKernelResult(
        scale_points=points,
        kernel_combined_speedup=points[-1].combined_speedup if points else 0.0,
        sim_cycles=vec.cycles_run,
        sim_deliveries=len(vec.store.deliveries),
        run_scalar_s=walls[False],
        run_vectorized_s=walls[True],
        run_speedup=walls[False] / max(walls[True], 1e-9),
        rate_scalar_s=scalar_stages["rate_resolve"],
        rate_vectorized_s=vec_stages["rate_resolve"],
        rate_speedup=scalar_stages["rate_resolve"]
        / max(vec_stages["rate_resolve"], 1e-9),
        deliver_scalar_s=scalar_stages["deliver"],
        deliver_vectorized_s=vec_stages["deliver"],
        deliver_speedup=scalar_stages["deliver"]
        / max(vec_stages["deliver"], 1e-9),
        apply_scalar_s=scalar_stages["deliver_apply"],
        apply_vectorized_s=vec_stages["deliver_apply"],
        combined_speedup=combined_scalar / max(combined_vec, 1e-9),
        identical_results=identical,
        budget_pairs=budget_pairs,
        budget_cap=budget_cap if budget_blocks else 0,
        budget_cycles=budget_cycles if budget_blocks else 0,
        budget_worst_cycle_s=budget_worst,
        budget_within_dt=(budget_worst <= 3.0) if budget_blocks else True,
    )

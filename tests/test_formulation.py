"""The joint (non-decoupled) formulation and the standard-LP router."""

import pytest

from repro.core import BDSController
from repro.core.formulation import JointFormulation, StandardLPRouter
from repro.core.scheduling import RarestFirstScheduler
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


def make_view(blocks=4):
    topo = Topology.full_mesh(
        num_dcs=2, servers_per_dc=2, wan_capacity=1 * GB, uplink=20 * MBps
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=("dc1",),
        total_bytes=blocks * 2 * MB,
        block_size=2 * MB,
    )
    job.bind(topo)
    sim = Simulation(topo, [job], BDSController(seed=0), SimConfig())
    return sim.snapshot_view()


class TestStandardLPRouter:
    def test_produces_valid_directives(self):
        view = make_view()
        selections = RarestFirstScheduler().select(view)
        directives, diag = StandardLPRouter().route(view, selections)
        assert directives
        assert diag.backend == "standard-lp"
        for d in directives:
            assert d.rate_cap is not None and d.rate_cap > 0
            assert view.store.has(d.src_server, d.block_ids[0])

    def test_respects_capacities(self):
        view = make_view(blocks=8)
        selections = RarestFirstScheduler().select(view)
        directives, _ = StandardLPRouter().route(view, selections)
        usage = {}
        for d in directives:
            for res in view.topology.flow_resources(d.src_server, d.dst_server):
                usage[res] = usage.get(res, 0.0) + (d.rate_cap or 0.0)
        for res, used in usage.items():
            assert used <= view.bulk_capacities[res] * 1.001

    def test_empty_selection(self):
        view = make_view()
        directives, diag = StandardLPRouter().route(view, [])
        assert directives == []
        assert diag.num_selections == 0

    def test_slower_than_decoupled_router_at_scale(self):
        """The Fig. 13a claim: joint LP runtime grows much faster."""
        view = make_view(blocks=128)
        selections = RarestFirstScheduler().select(view)
        controller = BDSController(seed=0)
        _, fast = controller.router.route(view, selections)
        _, slow = StandardLPRouter().route(view, selections)
        assert slow.runtime > fast.runtime

    def test_validation(self):
        with pytest.raises(ValueError):
            StandardLPRouter(max_sources_per_block=0)


class TestJointFormulation:
    def test_single_block_single_cycle(self):
        plan = JointFormulation(
            blocks=[6.0], paths_per_block=[[("l",)]], capacities={"l": 2.0}, dt=3.0
        ).solve_min_cycles()
        assert plan.feasible
        assert plan.num_cycles == 1

    def test_volume_needs_more_cycles(self):
        plan = JointFormulation(
            blocks=[12.0], paths_per_block=[[("l",)]], capacities={"l": 2.0}, dt=3.0
        ).solve_min_cycles()
        assert plan.num_cycles == 2

    def test_parallel_paths_reduce_cycles(self):
        single = JointFormulation(
            blocks=[12.0], paths_per_block=[[("a",)]], capacities={"a": 2.0, "b": 2.0}
        ).solve_min_cycles()
        double = JointFormulation(
            blocks=[12.0],
            paths_per_block=[[("a",), ("b",)]],
            capacities={"a": 2.0, "b": 2.0},
        ).solve_min_cycles()
        assert double.num_cycles < single.num_cycles

    def test_contending_blocks(self):
        # Two 6-unit blocks through one 2-unit/s link: 12 units / 6 per cycle.
        plan = JointFormulation(
            blocks=[6.0, 6.0],
            paths_per_block=[[("l",)], [("l",)]],
            capacities={"l": 2.0},
        ).solve_min_cycles()
        assert plan.num_cycles == 2

    def test_infeasible_returns_flag(self):
        plan = JointFormulation(
            blocks=[1000.0], paths_per_block=[[("l",)]], capacities={"l": 0.001}
        ).solve_min_cycles(max_cycles=3)
        assert not plan.feasible

    def test_flows_cover_blocks(self):
        formulation = JointFormulation(
            blocks=[6.0, 6.0],
            paths_per_block=[[("a",)], [("b",)]],
            capacities={"a": 2.0, "b": 2.0},
        )
        plan = formulation.solve_min_cycles()
        shipped = {}
        for (k, bi, pi), rate in plan.flows.items():
            shipped[bi] = shipped.get(bi, 0.0) + rate * formulation.dt
        assert shipped[0] >= 6.0 - 1e-6
        assert shipped[1] >= 6.0 - 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            JointFormulation(blocks=[], paths_per_block=[], capacities={})
        with pytest.raises(ValueError):
            JointFormulation(
                blocks=[1.0], paths_per_block=[], capacities={}
            )

    def test_unknown_resource_raises(self):
        formulation = JointFormulation(
            blocks=[1.0], paths_per_block=[[("ghost",)]], capacities={"l": 1.0}
        )
        with pytest.raises(KeyError):
            formulation.feasible_in(1)

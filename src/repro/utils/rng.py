"""Deterministic random-number-generator plumbing.

Every stochastic component in the reproduction (workload generator,
decentralized baselines, latency model, failure injection) takes an explicit
``numpy.random.Generator`` so that experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts an int seed, an existing generator (returned unchanged), or
    ``None`` for OS entropy. Centralizing this keeps call sites uniform.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used to give each simulated server/agent its own stream so that adding
    an agent does not perturb the randomness seen by the others.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    root = make_rng(seed)
    seeds = root.bit_generator._seed_seq  # type: ignore[attr-defined]
    if seeds is None:
        return [np.random.default_rng(root.integers(2**63)) for _ in range(count)]
    return [np.random.default_rng(child) for child in seeds.spawn(count)]

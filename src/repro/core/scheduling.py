"""The scheduling step: generalized rarest-first block selection (§4.3).

Each cycle BDS picks *which* blocks to transfer before deciding *how*.
Inspired by BitTorrent's rarest-first, the scheduler selects the subset of
pending (block, destination server) deliveries whose blocks currently have
the fewest copies cluster-wide, balancing block availability so that the
greedy per-cycle routing step rarely starves any block (§4.4's discussion).

The selection is what shrinks the routing step's search space: only the
selected deliveries become LP commodities.
"""

from __future__ import annotations

import time as _time
from typing import List, Tuple

from repro.core.decisions import ScheduledBlock
from repro.net.simulator import ClusterView
from repro.overlay.blocks import Block


class RarestFirstScheduler:
    """Selects pending deliveries in ascending order of block duplicates."""

    def __init__(
        self, max_blocks_per_cycle: int = 0, use_relays: bool = True
    ) -> None:
        """``max_blocks_per_cycle``: cap on selections per cycle (0 = all).

        A finite cap bounds the routing problem size for enormous jobs; the
        paper instead bounds work through the per-cycle volume constraint
        (Eq. 3), which the router's demand caps implement — both are
        supported. ``use_relays`` additionally schedules block placements
        onto a job's relay DCs (at lower priority than real deliveries).
        """
        if max_blocks_per_cycle < 0:
            raise ValueError("max_blocks_per_cycle must be >= 0")
        self.max_blocks_per_cycle = max_blocks_per_cycle
        self.use_relays = use_relays

    def select(self, view: ClusterView) -> List[ScheduledBlock]:
        """The cycle's ``w`` assignments, rarest blocks first.

        Only deliveries with at least one healthy source and a healthy
        destination are selected (a failed agent drops out of the decision
        space, §5.3). Relay placements sort after all real deliveries.

        Views without a :class:`~repro.net.cycle_cache.CycleCache`
        attached (the legacy engine) take the original per-candidate
        store-query path; cached views dedupe the rarity and source
        queries to one per distinct block id per cycle and sort without a
        per-comparison key callable. Both paths select the same blocks in
        the same order.
        """
        started = _time.perf_counter()
        cache = getattr(view, "_cache", None)
        if cache is None:
            return self._select_legacy(view, started)
        # Validate the cycle memos once, then work on the raw dicts: at
        # 10^5 candidates even a method call per query is measurable.
        cache.validate_sources(view.store.epoch, view._failed_frozen)
        sources_memo = cache.sources
        rarity_memo = cache.rarity
        store = view.store
        holders_of = store.holders
        dup_of = store.duplicate_count
        failed = view.failed_agents
        # Sort tuples carry an insertion counter so ties keep arrival
        # order (same result as the legacy stable key=item[:4] sort)
        # without the per-comparison key lambda.
        candidates: List[Tuple[int, int, int, int, int, ScheduledBlock]] = []
        append = candidates.append
        order = 0
        for job in view.jobs:
            priority = getattr(job, "priority", 0)
            neg_priority = -priority
            job_id = job.job_id
            pending: List[Tuple[Block, str, str, bool]] = [
                (block, dc, server, False)
                for block, dc, server in view.pending_deliveries(job)
            ]
            if self.use_relays and job.relay_dcs:
                pending.extend(
                    (block, dc, server, True)
                    for block, dc, server in view.pending_relay_placements(job)
                )
            for block, dst_dc, dst_server, is_relay in pending:
                if dst_server in failed:
                    continue
                bid = block.block_id
                duplicates = rarity_memo.get(bid)
                if duplicates is None:
                    duplicates = dup_of(bid)
                    rarity_memo[bid] = duplicates
                if duplicates == 0:
                    continue
                sources = sources_memo.get(bid)
                if sources is None:
                    holders = holders_of(bid)
                    if failed:
                        sources = [s for s in holders if s not in failed]
                    else:
                        sources = list(holders)
                    sources_memo[bid] = sources
                if not sources:
                    continue
                append(
                    (
                        1 if is_relay else 0,
                        neg_priority,
                        duplicates,
                        block.index,
                        order,
                        ScheduledBlock(
                            job_id=job_id,
                            block=block,
                            dst_dc=dst_dc,
                            dst_server=dst_server,
                            duplicates=duplicates,
                            is_relay=is_relay,
                        ),
                    )
                )
                order += 1
        candidates.sort()
        selected = [item[5] for item in candidates]
        if self.max_blocks_per_cycle:
            selected = selected[: self.max_blocks_per_cycle]
        self.last_runtime = _time.perf_counter() - started
        return selected

    def _select_legacy(
        self, view: ClusterView, started: float
    ) -> List[ScheduledBlock]:
        """The original implementation: per-candidate store queries and a
        key-callable sort. Kept verbatim as the baseline the hot-path
        benchmark and determinism A/B run against."""
        candidates: List[Tuple[int, int, int, int, ScheduledBlock]] = []
        for job in view.jobs:
            priority = getattr(job, "priority", 0)
            pending = [
                (block, dc, server, False)
                for block, dc, server in view.pending_deliveries(job)
            ]
            if self.use_relays and job.relay_dcs:
                pending.extend(
                    (block, dc, server, True)
                    for block, dc, server in view.pending_relay_placements(job)
                )
            for block, dst_dc, dst_server, is_relay in pending:
                if not view.agent_is_up(dst_server):
                    continue
                duplicates = view.store.duplicate_count(block.block_id)
                if duplicates == 0:
                    continue
                if not view.eligible_sources(block.block_id):
                    continue
                candidates.append(
                    (
                        1 if is_relay else 0,
                        -priority,
                        duplicates,
                        block.index,
                        ScheduledBlock(
                            job_id=job.job_id,
                            block=block,
                            dst_dc=dst_dc,
                            dst_server=dst_server,
                            duplicates=duplicates,
                            is_relay=is_relay,
                        ),
                    )
                )
        candidates.sort(key=lambda item: item[:4])
        selected = [entry for _r, _p, _dup, _idx, entry in candidates]
        if self.max_blocks_per_cycle:
            selected = selected[: self.max_blocks_per_cycle]
        self.last_runtime = _time.perf_counter() - started
        return selected

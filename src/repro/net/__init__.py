"""Network substrate: topology, overlay paths, flows, and the cycle simulator.

This package is the stand-in for the inter-datacenter WAN the paper's pilot
deployment ran on. It models datacenters connected by capacitated WAN links,
servers with uplink/downlink caps, max-min fair bandwidth sharing, latency,
diurnal latency-sensitive background traffic, and failure injection.
"""

from repro.net.topology import DataCenter, Link, Server, Topology
from repro.net.paths import (
    OverlayPath,
    bottleneck_capacity,
    bottleneck_resources,
    are_bottleneck_disjoint,
    enumerate_dc_paths,
    enumerate_overlay_paths,
)
from repro.net.flow import Flow, max_min_fair_rates, clip_rates_to_capacity
from repro.net.latency import LatencyModel
from repro.net.background import BackgroundTraffic, delay_inflation
from repro.net.failures import FailureEvent, FailureSchedule
from repro.net.presets import baidu_like, dumbbell, global_regions

# The simulator sits above the overlay data plane (it moves blocks between
# agents), so importing it here eagerly would be circular:
# net.simulator -> overlay.job -> net.topology -> this __init__.
# PEP 562 lazy attributes break the cycle while keeping
# ``from repro.net import Simulation`` working.
_SIMULATOR_EXPORTS = (
    "ClusterView",
    "SimConfig",
    "SimResult",
    "Simulation",
    "TransferDirective",
)


def __getattr__(name):
    if name in _SIMULATOR_EXPORTS:
        from repro.net import simulator

        return getattr(simulator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DataCenter",
    "Link",
    "Server",
    "Topology",
    "OverlayPath",
    "bottleneck_capacity",
    "bottleneck_resources",
    "are_bottleneck_disjoint",
    "enumerate_dc_paths",
    "enumerate_overlay_paths",
    "Flow",
    "max_min_fair_rates",
    "clip_rates_to_capacity",
    "LatencyModel",
    "BackgroundTraffic",
    "delay_inflation",
    "FailureEvent",
    "FailureSchedule",
    "baidu_like",
    "dumbbell",
    "global_regions",
    "ClusterView",
    "SimConfig",
    "SimResult",
    "Simulation",
    "TransferDirective",
]

"""Flow-kernel A/B — array data plane vs the scalar rate/delivery path.

Three measurements, all with bit-identity asserted between arms:

* **Synthetic scale points** (6k/60k/600k flows) isolate the rate
  kernels — ``max_min_fair_rates`` scalar vs vectorized, ditto
  ``clip_rates_to_capacity`` — plus the delivery application split
  (looped ``record_delivery`` vs one batched ``record_deliveries``) on
  the same event counts. The headline number is the largest point's
  combined rate+deliver speedup.
* **End-to-end simulation A/B** flips only ``SimConfig.vectorized_flow``
  on a delivery-heavy Gingko run; fingerprints, per-cycle deliveries,
  and the full provenance record list must match exactly.
* **ΔT budget**: full steady-state controller cycles over ~10^6 (block,
  destination) pairs (view/schedule/route/rate/deliver, Eq. 3 selection
  cap); the worst single cycle's stage total must fit the paper's 3 s
  update interval.

Run as a script to emit ``BENCH_flow.json``::

    PYTHONPATH=src python benchmarks/bench_flow_kernel.py [--quick]

or through pytest like the other benchmarks (quick scale).
"""

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.experiments import FlowKernelResult, exp_flow_kernel
from repro.analysis.reporting import format_table

FULL_SCALES = (6_000, 60_000, 600_000)
QUICK_SCALES = (2_000, 6_000)
FULL_SIM_BLOCKS = 4_000
QUICK_SIM_BLOCKS = 1_000
BUDGET_BLOCKS = 333_334  # x3 destination DCs ~= 10^6 (block, dst) pairs
QUICK_BUDGET_BLOCKS = 20_000
BUDGET_CAP = 20_000  # Eq. 3-style per-cycle selection cap

RESULT_FORMAT_VERSION = 1

COMBINED_SPEEDUP_FLOOR = 3.0
BUDGET_DT_SECONDS = 3.0


def result_payload(result: FlowKernelResult, quick: bool) -> dict:
    """Flatten a :class:`FlowKernelResult` for ``BENCH_flow.json``."""
    return {
        "format_version": RESULT_FORMAT_VERSION,
        "quick": quick,
        "scale_points": [
            {
                "flows": p.flows,
                "entries": p.entries,
                "resources": p.resources,
                "waterfill_scalar_s": p.waterfill_scalar_s,
                "waterfill_vectorized_s": p.waterfill_vectorized_s,
                "waterfill_speedup": p.waterfill_speedup,
                "clip_scalar_s": p.clip_scalar_s,
                "clip_vectorized_s": p.clip_vectorized_s,
                "clip_speedup": p.clip_speedup,
                "deliver_events": p.deliver_events,
                "deliver_scalar_s": p.deliver_scalar_s,
                "deliver_vectorized_s": p.deliver_vectorized_s,
                "deliver_speedup": p.deliver_speedup,
                "combined_speedup": p.combined_speedup,
                "identical_results": p.identical_results,
            }
            for p in result.scale_points
        ],
        "kernel_combined_speedup": result.kernel_combined_speedup,
        "simulation": {
            "cycles": result.sim_cycles,
            "deliveries": result.sim_deliveries,
            "scalar_wall_s": result.run_scalar_s,
            "vectorized_wall_s": result.run_vectorized_s,
            "wall_speedup": result.run_speedup,
            "rate_resolve": {
                "scalar_s": result.rate_scalar_s,
                "vectorized_s": result.rate_vectorized_s,
                "speedup": result.rate_speedup,
            },
            "deliver": {
                "scalar_s": result.deliver_scalar_s,
                "vectorized_s": result.deliver_vectorized_s,
                "speedup": result.deliver_speedup,
            },
            "deliver_apply": {
                "scalar_s": result.apply_scalar_s,
                "vectorized_s": result.apply_vectorized_s,
            },
            "combined_speedup": result.combined_speedup,
        },
        "dt_budget": {
            "pending_pairs": result.budget_pairs,
            "selection_cap": result.budget_cap,
            "cycles": result.budget_cycles,
            "worst_cycle_s": result.budget_worst_cycle_s,
            "within_3s_dt": result.budget_within_dt,
        },
        "identical_results": result.identical_results,
    }


def format_report(result: FlowKernelResult) -> str:
    rows = [
        [
            f"{p.flows}",
            f"{p.waterfill_scalar_s:.3f}",
            f"{p.waterfill_vectorized_s:.3f}",
            f"{p.waterfill_speedup:.1f}x",
            f"{p.clip_speedup:.1f}x",
            f"{p.deliver_speedup:.1f}x",
            f"{p.combined_speedup:.1f}x",
        ]
        for p in result.scale_points
    ]
    return (
        f"[flow kernel] combined rate+deliver speedup at largest scale: "
        f"{result.kernel_combined_speedup:.2f}x\n"
        + format_table(
            [
                "flows",
                "waterfill scalar (s)",
                "vectorized (s)",
                "waterfill",
                "clip",
                "deliver",
                "combined",
            ],
            rows,
        )
        + f"\nsimulation A/B ({result.sim_cycles} cycles, "
        f"{result.sim_deliveries} deliveries): "
        f"rate_resolve {result.rate_scalar_s:.3f}s vs "
        f"{result.rate_vectorized_s:.3f}s, deliver "
        f"{result.deliver_scalar_s:.3f}s vs {result.deliver_vectorized_s:.3f}s "
        f"(apply {result.apply_scalar_s:.3f}s vs "
        f"{result.apply_vectorized_s:.3f}s) -> combined "
        f"{result.combined_speedup:.2f}x\n"
        f"dt budget: {result.budget_pairs} pairs, cap {result.budget_cap}, "
        f"{result.budget_cycles} full cycles -> worst cycle "
        f"{result.budget_worst_cycle_s:.3f}s "
        f"(within 3s dt: {result.budget_within_dt})\n"
        f"identical results: {result.identical_results}"
    )


def test_flow_kernel(benchmark, report):
    """Pytest entry: quick-scale A/B; results must be bit-identical."""
    result = benchmark.pedantic(
        lambda: exp_flow_kernel(
            scales=QUICK_SCALES,
            sim_blocks=QUICK_SIM_BLOCKS,
            seed=0,
            budget_blocks=QUICK_BUDGET_BLOCKS,
            budget_cap=5_000,
        ),
        rounds=1,
        iterations=1,
    )
    report("\n" + format_report(result))
    assert result.identical_results
    # The >=3x combined floor and the 10^6-pair dt budget are asserted at
    # full scale by the script / recorded in BENCH_flow.json; quick scale
    # only checks bit-identical A/B and that the budget demo completes.
    assert result.budget_within_dt


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scales for CI smoke runs (no speedup floors asserted)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_flow.json",
        help="where to write the JSON result (default: ./BENCH_flow.json)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    result = exp_flow_kernel(
        scales=QUICK_SCALES if args.quick else FULL_SCALES,
        sim_blocks=QUICK_SIM_BLOCKS if args.quick else FULL_SIM_BLOCKS,
        seed=args.seed,
        budget_blocks=QUICK_BUDGET_BLOCKS if args.quick else BUDGET_BLOCKS,
        budget_cap=5_000 if args.quick else BUDGET_CAP,
    )
    print(format_report(result))

    payload = result_payload(result, quick=args.quick)
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")

    if not result.identical_results:
        print("FAIL: scalar and vectorized paths diverged", file=sys.stderr)
        return 1
    if args.quick:
        return 0
    failed = False
    if result.kernel_combined_speedup < COMBINED_SPEEDUP_FLOOR:
        print(
            f"FAIL: combined rate+deliver speedup "
            f"{result.kernel_combined_speedup:.2f}x below the "
            f"{COMBINED_SPEEDUP_FLOOR:.0f}x target",
            file=sys.stderr,
        )
        failed = True
    if not result.budget_within_dt:
        print(
            f"FAIL: worst 10^6-pair cycle took "
            f"{result.budget_worst_cycle_s:.2f}s, over the "
            f"{BUDGET_DT_SECONDS:.0f}s dt budget",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

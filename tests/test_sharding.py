"""Unit tests for the deterministic job→shard partitioner.

The assignment must be platform-stable: the same job id, shard count,
and seed map to the same shard on every run, interpreter, and machine
(no reliance on Python's per-process ``hash()`` randomization). The
golden values below pin that contract — they may only change with an
explicit format break.
"""

from __future__ import annotations

import pytest

from repro.core.sharding import (
    AffinityAssigner,
    _hash64,
    affinity_partition,
    assignment_moves,
    job_weight,
    partition_indices,
    partition_jobs,
    rebalance_moves,
    stable_shard,
)


class _FakeJob:
    def __init__(self, job_id: str) -> None:
        self.job_id = job_id


class _WeightedJob:
    def __init__(self, job_id: str, src_dc: str, blocks: int, dsts: int) -> None:
        self.job_id = job_id
        self.src_dc = src_dc
        self.blocks = list(range(blocks))
        self.dst_dcs = tuple(f"dst{i}" for i in range(dsts))


class TestStableShard:
    def test_golden_values(self):
        # Pinned platform-stable assignments (blake2b keyed by the seed).
        assert _hash64("job0", 0) == 9770455428314747166
        assert _hash64("job1", 0) == 12121382172694623555
        assert stable_shard("job0", 4) == 2
        assert stable_shard("job1", 4) == 3
        assert stable_shard("alpha", 4) == 3
        assert stable_shard("alpha", 4, seed=7) == 1
        # Non-ASCII ids hash their UTF-8 bytes.
        assert stable_shard("β-job", 4) == 1

    def test_stable_across_calls(self):
        ids = [f"job{i}" for i in range(200)]
        first = [stable_shard(j, 8, seed=3) for j in ids]
        second = [stable_shard(j, 8, seed=3) for j in ids]
        assert first == second

    def test_single_shard_short_circuit(self):
        assert stable_shard("anything", 1) == 0
        assert stable_shard("anything", 1, seed=99) == 0

    def test_range(self):
        for i in range(100):
            assert 0 <= stable_shard(f"j{i}", 5) < 5

    def test_seed_respreads(self):
        ids = [f"job{i}" for i in range(100)]
        base = [stable_shard(j, 4, seed=0) for j in ids]
        reseeded = [stable_shard(j, 4, seed=1) for j in ids]
        assert base != reseeded

    def test_roughly_balanced(self):
        ids = [f"job{i}" for i in range(1000)]
        counts = [0] * 4
        for j in ids:
            counts[stable_shard(j, 4)] += 1
        # A keyed cryptographic hash spreads uniformly; allow wide slack.
        assert min(counts) > 150

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            stable_shard("x", 0)
        with pytest.raises(ValueError):
            stable_shard("x", -2)


class TestPartition:
    def test_partition_jobs_preserves_order(self):
        jobs = [_FakeJob(f"job{i}") for i in range(50)]
        buckets = partition_jobs(jobs, 4)
        assert len(buckets) == 4
        seen = [job for bucket in buckets for job in bucket]
        assert sorted(j.job_id for j in seen) == sorted(j.job_id for j in jobs)
        for s, bucket in enumerate(buckets):
            ids = [j.job_id for j in bucket]
            # Within a bucket, original arrival order is preserved.
            positions = [int(i[3:]) for i in ids]
            assert positions == sorted(positions)
            for jid in ids:
                assert stable_shard(jid, 4) == s

    def test_partition_indices_matches_jobs(self):
        ids = [f"job{i}" for i in range(30)]
        jobs = [_FakeJob(j) for j in ids]
        mapping = partition_indices(ids, 3)
        buckets = partition_jobs(jobs, 3)
        for s in range(3):
            assert [j.job_id for j in buckets[s]] == [
                jid for jid in ids if mapping[jid] == s
            ]


class TestRebalance:
    def test_moves_only_reassigned_jobs(self):
        ids = [f"job{i}" for i in range(100)]
        moves = rebalance_moves(ids, old_shards=2, new_shards=4)
        for jid, (old, new) in moves.items():
            assert old == stable_shard(jid, 2)
            assert new == stable_shard(jid, 4)
            assert old != new
        unmoved = set(ids) - set(moves)
        for jid in unmoved:
            assert stable_shard(jid, 2) == stable_shard(jid, 4)

    def test_same_shards_no_moves(self):
        ids = [f"job{i}" for i in range(20)]
        assert rebalance_moves(ids, 3, 3) == {}


def _workload(count: int = 60, dcs: int = 6):
    """Deterministic mixed-weight workload: rotating sources, varied sizes."""
    return [
        _WeightedJob(
            f"job{i}",
            f"dc{i % dcs}",
            blocks=4 + (i * 7) % 40,
            dsts=2 + i % 4,
        )
        for i in range(count)
    ]


class TestJobWeight:
    def test_pair_count(self):
        job = _WeightedJob("a", "dc0", blocks=12, dsts=3)
        assert job_weight(job) == 36

    def test_never_zero(self):
        assert job_weight(_FakeJob("bare")) == 1
        assert job_weight(_WeightedJob("empty", "dc0", blocks=0, dsts=4)) == 1


class TestAffinityAssigner:
    def test_deterministic_and_repeatable(self):
        jobs = _workload()
        first = affinity_partition(jobs, 4, seed=3)
        second = affinity_partition(_workload(), 4, seed=3)
        assert first == second
        # Incremental assignment matches the one-shot helper.
        assigner = AffinityAssigner(4, seed=3)
        assert {j.job_id: assigner.assign(j) for j in jobs} == first

    def test_sticky(self):
        jobs = _workload()
        assigner = AffinityAssigner(4)
        before = [assigner.assign(j) for j in jobs]
        # Re-asking (any order) never moves a placed job.
        after = [assigner.assign(j) for j in reversed(jobs)]
        assert after == list(reversed(before))

    def test_single_shard_all_zero(self):
        assert set(affinity_partition(_workload(), 1).values()) == {0}

    def test_range(self):
        mapping = affinity_partition(_workload(), 5)
        assert all(0 <= s < 5 for s in mapping.values())

    def test_co_locates_same_source(self):
        # Equal-weight round-robin over as many sources as shards: homes
        # land on distinct shards, the fleet stays balanced, and every
        # source keeps all its jobs on its home shard (the hash
        # partitioner scatters them almost surely).
        jobs = [
            _WeightedJob(f"j{i}", f"dc{i % 4}", blocks=2, dsts=2)
            for i in range(32)
        ]
        mapping = affinity_partition(jobs, 4)
        by_src = {}
        for job in jobs:
            by_src.setdefault(job.src_dc, set()).add(mapping[job.job_id])
        assert all(len(shards) == 1 for shards in by_src.values())
        # ...and the four sources occupy four distinct shards.
        assert len({next(iter(s)) for s in by_src.values()}) == 4

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_balance_bound(self, shards):
        jobs = _workload(count=120)
        assigner = AffinityAssigner(shards, slack=0.25)
        for job in jobs:
            assigner.assign(job)
        mean = assigner.total / shards
        max_w = max(job_weight(j) for j in jobs)
        # Documented bound: the slack envelope plus one indivisible job.
        assert max(assigner.loads) <= (1 + assigner.slack) * mean + max_w

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            AffinityAssigner(0)
        with pytest.raises(ValueError):
            AffinityAssigner(2, slack=-0.1)


class TestAssignmentMoves:
    def test_reports_only_changed(self):
        jobs = _workload()
        old = affinity_partition(jobs, 2)
        new = affinity_partition(jobs, 4)
        moves = assignment_moves(old, new)
        for jid, (o, n) in moves.items():
            assert old[jid] == o and new[jid] == n and o != n
        for jid in set(old) - set(moves):
            assert old[jid] == new[jid]

    def test_ignores_jobs_missing_from_either_side(self):
        assert assignment_moves({"a": 0}, {"b": 1}) == {}

    def test_identity(self):
        mapping = affinity_partition(_workload(), 3)
        assert assignment_moves(mapping, dict(mapping)) == {}

"""Gingko: Baidu's receiver-driven decentralized overlay (§2.3).

The paper describes Gingko as a "receiver-driven decentralized overlay
multicast protocol": when DCs request a file, data flows through stages of
intermediate servers, and each receiver picks its senders *locally*, seeing
only a subset of the available data sources. Two consequences the paper
measures, both reproduced here:

* **Limitation 1 — inefficient local adaptation**: each receiver only
  knows a small, periodically refreshed *neighbor set* of servers, and can
  only fetch blocks its current neighbors happen to hold. Because a bulk
  file is striped across many servers, a receiver's neighbors cover only a
  slice of the blocks it needs; receivers idle waiting for useful
  neighbors, pile onto the same uplinks, and a long straggler tail forms —
  the ~4.75× gap from the ideal in Fig. 5.
* **Limitation 2 — no traffic isolation**: Gingko does not respect the
  safety threshold, so bursty bulk transfers push links past it (Fig. 6).

Gingko also serves as BDS's decentralized *fallback* when the controller is
unreachable (§5.3).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.base import OverlayStrategy
from repro.net.simulator import ClusterView, TransferDirective
from repro.overlay.blocks import Block
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive


class GingkoStrategy(OverlayStrategy):
    """Receiver-driven fetching over limited, slowly-refreshing local views."""

    uses_controller_rates = False
    respects_safety_threshold = False

    def __init__(
        self,
        view_size: int = 10,
        epoch_cycles: int = 5,
        fetch_parallelism: int = 3,
        blocks_per_request: int = 8,
        seed: SeedLike = None,
    ) -> None:
        """
        ``view_size``: neighbors a receiver knows at a time — the paper's
        "individual servers only see a subset of available data sources".
        ``epoch_cycles``: cycles between neighbor-set refreshes (gossip is
        slow relative to the transfer). ``fetch_parallelism``: concurrent
        senders used per cycle. ``blocks_per_request``: blocks batched per
        sender per cycle.
        """
        check_positive("view_size", view_size)
        check_positive("epoch_cycles", epoch_cycles)
        check_positive("fetch_parallelism", fetch_parallelism)
        check_positive("blocks_per_request", blocks_per_request)
        self.view_size = view_size
        self.epoch_cycles = epoch_cycles
        self.fetch_parallelism = fetch_parallelism
        self.blocks_per_request = blocks_per_request
        self._rng = make_rng(seed)
        # (job_id, receiver) -> neighbor server ids known this epoch.
        self._neighbors: Dict[Tuple[str, str], List[str]] = {}
        self._last_epoch = -1

    def decide(self, view: ClusterView) -> List[TransferDirective]:
        epoch = view.cycle // self.epoch_cycles
        refresh = epoch != self._last_epoch
        self._last_epoch = epoch

        directives: List[TransferDirective] = []
        for job in view.jobs:
            by_server = self.missing_blocks_by_server(view, job)
            for dst_server, missing in by_server.items():
                key = (job.job_id, dst_server)
                if refresh or key not in self._neighbors:
                    self._neighbors[key] = self._sample_neighbors(
                        view, job.job_id, dst_server
                    )
                partition = self._fetch_from_neighbors(
                    view, dst_server, missing, self._neighbors[key]
                )
                directives.extend(
                    self.directives_for_partition(job, dst_server, partition)
                )
        return directives

    def _sample_neighbors(
        self, view: ClusterView, job_id: str, dst_server: str
    ) -> List[str]:
        """One epoch's local view: a random sample of servers with data.

        The candidate pool is every healthy server holding at least one
        block of the job (the receiver hears about data sources through
        gossip), but the receiver only keeps ``view_size`` of them and is
        stuck with that choice until the next epoch.
        """
        pool: List[str] = []
        seen = set()
        for job in view.jobs:
            if job.job_id != job_id:
                continue
            for block in job.blocks:
                for holder in view.store.holders(block.block_id):
                    if holder not in seen and holder != dst_server:
                        if view.agent_is_up(holder):
                            seen.add(holder)
                            pool.append(holder)
        if not pool:
            return []
        pool.sort()
        size = min(self.view_size, len(pool))
        idx = self._rng.choice(len(pool), size=size, replace=False)
        return [pool[int(i)] for i in idx]

    def _fetch_from_neighbors(
        self,
        view: ClusterView,
        dst_server: str,
        missing: List[Block],
        neighbors: List[str],
    ) -> Dict[str, List[Block]]:
        """Request missing blocks that current neighbors actually hold.

        Receivers walk their missing blocks in index order (they do not
        know global rarity — that is the controller's privilege) and ask
        the first neighbor holding each block, up to ``fetch_parallelism``
        senders and ``blocks_per_request`` blocks per sender. Blocks no
        neighbor holds simply wait for a future epoch — the source of the
        straggler tail.
        """
        partition: Dict[str, List[Block]] = {}
        for block in sorted(missing):
            holders = [
                n
                for n in neighbors
                if view.store.has(n, block.block_id) and view.agent_is_up(n)
            ]
            if not holders:
                continue
            pick = None
            for holder in holders:
                if holder in partition:
                    pick = holder
                    break
            if pick is None:
                if len(partition) >= self.fetch_parallelism:
                    continue
                pick = holders[int(self._rng.integers(len(holders)))]
            bucket = partition.setdefault(pick, [])
            if len(bucket) >= self.blocks_per_request:
                continue
            bucket.append(block)
        return partition

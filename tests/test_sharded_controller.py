"""Sharded control plane: identity, determinism, and reconciliation.

Contracts under test (ISSUE: sharded multi-controller control plane):

* ``shards=1`` takes the original single-controller code path and is
  bit-identical to a controller built before the knob existed — the
  golden-fingerprint tests assert equality against a default-config run
  on both the tick and event engines.
* ``shards=k`` is deterministic: repeated runs produce identical
  fingerprints, on both engines, in both execution modes.
* ``shard_mode="process"`` produces results bit-identical to
  ``"inprocess"`` (worker mirrors replay the possession log).
* The reconciliation pass bounds each WAN link's summed directive rate
  caps by its bulk budget.
* Sharded completion times stay within a small tolerance of the single
  controller (the documented quality envelope).
"""

from __future__ import annotations

import pytest

from repro.core.config import BDSConfig
from repro.core.controller import BDSController
from repro.net.simulator import SimConfig, SimResult, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps

SEED = 90

#: Documented quality envelope: sharded completion within 2 cycles and
#: within 2x of single-controller (tiny scenarios quantize to whole
#: cycles, so a relative bound alone would be vacuous or flaky).
QUALITY_SLACK_CYCLES = 2


def _scenario(num_jobs: int = 6):
    topo = Topology.full_mesh(
        num_dcs=5, servers_per_dc=4, wan_capacity=500 * MBps, uplink=25 * MBps
    )
    jobs = []
    for j in range(num_jobs):
        src = f"dc{j % 5}"
        job = MulticastJob(
            job_id=f"job{j}",
            src_dc=src,
            dst_dcs=tuple(f"dc{i}" for i in range(5) if f"dc{i}" != src),
            total_bytes=48 * MB,
            block_size=4 * MB,
        )
        job.bind(topo)
        jobs.append(job)
    return topo, jobs


def _run(
    shards: int,
    stride: int = 1,
    mode: str = "inprocess",
    event: bool = True,
    num_jobs: int = 6,
    config: BDSConfig = None,
) -> SimResult:
    topo, jobs = _scenario(num_jobs)
    cfg = config or BDSConfig(
        shards=shards, shard_stride=stride, shard_mode=mode
    )
    controller = BDSController(cfg)
    sim = Simulation(
        topology=topo,
        jobs=jobs,
        strategy=controller,
        config=SimConfig(event_engine=event),
        seed=SEED,
    )
    try:
        return sim.run()
    finally:
        controller.shutdown()


def _fingerprint(result: SimResult):
    return (
        result.job_completion,
        result.dc_completion,
        result.server_completion,
        result.blocks_per_cycle(),
        [s.bytes_transferred for s in result.cycle_stats],
    )


class TestSingleShardIdentity:
    """shards=1 must be bit-identical to the pre-knob controller."""

    @pytest.mark.parametrize("event", [False, True])
    def test_default_config_unchanged(self, event):
        baseline = _run(1, event=event, config=BDSConfig())
        sharded_off = _run(1, event=event)
        assert baseline.all_complete
        assert _fingerprint(baseline) == _fingerprint(sharded_off)

    def test_no_shard_telemetry_on_single_path(self):
        result = _run(1)
        assert all(s.shard_count == 0 for s in result.cycle_stats)
        assert all(s.time_reconcile == 0.0 for s in result.cycle_stats)

    def test_signature_none_when_unsharded(self):
        assert BDSController(BDSConfig()).shard_signature is None
        assert BDSController(
            BDSConfig(shards=3, shard_seed=5, shard_stride=2)
        ).shard_signature == (3, 5, 2, "hash")
        assert BDSController(
            BDSConfig(shards=3, shard_partition="affinity")
        ).shard_signature == (3, 0, 1, "affinity")


class TestShardedDeterminism:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("event", [False, True])
    def test_repeated_runs_identical(self, shards, event):
        first = _run(shards, event=event)
        second = _run(shards, event=event)
        assert first.all_complete
        assert _fingerprint(first) == _fingerprint(second)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_event_matches_tick(self, shards):
        assert _fingerprint(_run(shards, event=True)) == _fingerprint(
            _run(shards, event=False)
        )

    @pytest.mark.parametrize("stride", [2, 3])
    def test_stride_deterministic_both_engines(self, stride):
        tick = _run(3, stride=stride, event=False)
        ev = _run(3, stride=stride, event=True)
        assert tick.all_complete
        assert _fingerprint(tick) == _fingerprint(ev)

    def test_shard_telemetry_recorded(self):
        result = _run(3)
        fresh = [s for s in result.cycle_stats if s.shard_count]
        assert fresh, "sharded cycles must record shard telemetry"
        for s in fresh:
            assert s.shard_count == 3
            assert s.time_shard_max >= s.time_shard_mean >= 0.0
        assert result.stage_time_totals()["reconcile"] >= 0.0


class TestProcessMode:
    def test_process_matches_inprocess(self):
        assert _fingerprint(_run(2, mode="process")) == _fingerprint(
            _run(2, mode="inprocess")
        )

    def test_process_matches_inprocess_with_stride(self):
        assert _fingerprint(
            _run(3, stride=2, mode="process")
        ) == _fingerprint(_run(3, stride=2, mode="inprocess"))


class TestReconciliation:
    def test_wan_sums_within_budget(self):
        """Controller output (pre-simulator) respects every WAN budget."""
        topo, jobs = _scenario(8)
        cfg = BDSConfig(shards=4)
        controller = BDSController(cfg)
        sim = Simulation(
            topology=topo,
            jobs=jobs,
            strategy=controller,
            config=SimConfig(event_engine=False),
            seed=SEED,
        )
        sim.run()
        budgets = {
            key: cfg.safety_threshold * link.capacity
            for key, link in topo.links.items()
        }
        checked = 0
        for decision in controller.decisions:
            usage = {}
            for d in decision.directives:
                if d.rate_cap is None:
                    continue
                res = topo.flow_resources(d.src_server, d.dst_server)
                for key in res:
                    if key in budgets:
                        usage[key] = usage.get(key, 0.0) + d.rate_cap
            for key, used in usage.items():
                checked += 1
                assert used <= budgets[key] * (1 + 1e-9)
        assert checked > 0

    def test_reconciled_counter_sane(self):
        topo, jobs = _scenario(8)
        controller = BDSController(BDSConfig(shards=4))
        Simulation(
            topology=topo,
            jobs=jobs,
            strategy=controller,
            config=SimConfig(event_engine=False),
            seed=SEED,
        ).run()
        for decision in controller.decisions:
            assert decision.reconciled_directives <= len(decision.directives)
            assert decision.reconcile_runtime >= 0.0


class TestShardLocalState:
    """Partition-scoped mirrors (the default sharded decide path)."""

    @pytest.mark.parametrize("shards,stride", [(2, 1), (3, 2), (4, 1)])
    def test_mirror_matches_shared_store(self, shards, stride):
        """shard_local_state=False (shared-store sub-views) is the PR 7
        decide path; the mirror path must reproduce it bit-for-bit."""
        legacy = _run(
            shards,
            stride=stride,
            config=BDSConfig(
                shards=shards, shard_stride=stride, shard_local_state=False
            ),
        )
        mirror = _run(shards, stride=stride)
        assert mirror.all_complete
        assert _fingerprint(mirror) == _fingerprint(legacy)

    def test_state_telemetry_recorded(self):
        result = _run(3)
        fresh = [s for s in result.cycle_stats if s.shard_count]
        assert fresh
        assert any(s.shard_state_bytes > 0 for s in fresh)
        assert any(s.shard_candidate_bytes > 0 for s in fresh)
        assert any(s.shard_payload_bytes > 0 for s in fresh)
        assert all(s.shard_stride == 1 for s in fresh)

    def test_no_state_telemetry_on_shared_store_path(self):
        result = _run(
            2, config=BDSConfig(shards=2, shard_local_state=False)
        )
        assert all(s.shard_state_bytes == 0 for s in result.cycle_stats)
        assert all(s.shard_candidate_bytes == 0 for s in result.cycle_stats)

    def test_per_shard_state_scales_down(self):
        """At a scale past the matrix's 1024-column capacity floor, each
        shard's possession state is a fraction of the full store's."""
        topo = Topology.full_mesh(
            num_dcs=5, servers_per_dc=4, wan_capacity=500 * MBps,
            uplink=25 * MBps,
        )

        def make_jobs():
            jobs = []
            for j in range(8):
                src = f"dc{j % 5}"
                job = MulticastJob(
                    job_id=f"big{j}",
                    src_dc=src,
                    dst_dcs=tuple(
                        f"dc{i}" for i in range(5) if f"dc{i}" != src
                    ),
                    total_bytes=300 * 4 * MB,
                    block_size=4 * MB,
                )
                job.bind(topo)
                jobs.append(job)
            return jobs

        def run(config):
            controller = BDSController(config)
            sim = Simulation(
                topology=topo,
                jobs=make_jobs(),
                strategy=controller,
                config=SimConfig(max_cycles=2, event_engine=False),
                seed=SEED,
            )
            try:
                return sim.run()
            finally:
                controller.shutdown()

        base = run(BDSConfig())
        base_bytes = base.store.state_bytes()
        assert base_bytes > 0
        sharded = run(BDSConfig(shards=4, shard_partition="affinity"))
        peak = max(s.shard_state_bytes for s in sharded.cycle_stats)
        assert 0 < peak <= 0.5 * base_bytes


class TestAffinityPartition:
    @pytest.mark.parametrize("event", [False, True])
    def test_single_shard_matches_hash(self, event):
        """At shards=1 the partition policy is irrelevant: affinity must
        reproduce the default-config golden fingerprint."""
        baseline = _run(1, event=event, config=BDSConfig())
        affinity = _run(
            1,
            event=event,
            config=BDSConfig(shards=1, shard_partition="affinity"),
        )
        assert _fingerprint(baseline) == _fingerprint(affinity)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_deterministic(self, shards):
        cfg = BDSConfig(shards=shards, shard_partition="affinity")
        first = _run(shards, config=cfg)
        second = _run(
            shards,
            config=BDSConfig(shards=shards, shard_partition="affinity"),
        )
        assert first.all_complete
        assert _fingerprint(first) == _fingerprint(second)

    def test_event_matches_tick(self):
        cfg = dict(shards=3, shard_partition="affinity")
        assert _fingerprint(
            _run(3, event=True, config=BDSConfig(**cfg))
        ) == _fingerprint(_run(3, event=False, config=BDSConfig(**cfg)))

    def test_process_matches_inprocess(self):
        assert _fingerprint(
            _run(
                2,
                config=BDSConfig(
                    shards=2, shard_partition="affinity", shard_mode="process"
                ),
            )
        ) == _fingerprint(
            _run(2, config=BDSConfig(shards=2, shard_partition="affinity"))
        )

    def test_quality_within_tolerance(self):
        base = _run(1)
        sharded = _run(
            3, config=BDSConfig(shards=3, shard_partition="affinity")
        )
        assert sharded.all_complete
        dt = 3.0
        for job_id, t_base in base.job_completion.items():
            assert (
                sharded.job_completion[job_id]
                <= t_base + QUALITY_SLACK_CYCLES * dt
            )


class TestAdaptiveStride:
    def test_auto_run_completes_with_sane_telemetry(self):
        result = _run(
            3, config=BDSConfig(shards=3, shard_stride="auto")
        )
        assert result.all_complete
        fresh = [s for s in result.cycle_stats if s.shard_count]
        assert fresh
        # The effective stride is always a positive int within [1, k].
        assert all(1 <= s.shard_stride <= 3 for s in fresh)

    def test_auto_signature_tracks_effective_stride(self):
        controller = BDSController(BDSConfig(shards=4, shard_stride="auto"))
        # Auto mode cold-starts maximally staggered (stride = shards).
        assert controller.shard_signature == (4, 0, 4, "hash")
        # A stride change must change the signature (the event engine's
        # cached decisions key on it).
        controller._stride = 2
        assert controller.shard_signature == (4, 0, 2, "hash")

    def test_auto_quality_within_tolerance(self):
        base = _run(1)
        auto = _run(4, config=BDSConfig(shards=4, shard_stride="auto"))
        assert auto.all_complete
        dt = 3.0
        for job_id, t_base in base.job_completion.items():
            # Worst case the stride widens to k: same envelope as the
            # static stride=k test below.
            assert (
                auto.job_completion[job_id]
                <= t_base + (QUALITY_SLACK_CYCLES + 4) * dt
            )


class TestShardedQuality:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_completion_within_tolerance(self, shards):
        base = _run(1)
        sharded = _run(shards)
        assert sharded.all_complete
        dt = 3.0
        for job_id, t_base in base.job_completion.items():
            t_shard = sharded.job_completion[job_id]
            assert t_shard <= t_base + QUALITY_SLACK_CYCLES * dt

    def test_stride_completion_within_tolerance(self):
        base = _run(1)
        strided = _run(4, stride=4)
        assert strided.all_complete
        dt = 3.0
        for job_id, t_base in base.job_completion.items():
            assert (
                strided.job_completion[job_id]
                <= t_base + (QUALITY_SLACK_CYCLES + 4) * dt
            )

"""The scheduling step: generalized rarest-first block selection (§4.3).

Each cycle BDS picks *which* blocks to transfer before deciding *how*.
Inspired by BitTorrent's rarest-first, the scheduler selects the subset of
pending (block, destination server) deliveries whose blocks currently have
the fewest copies cluster-wide, balancing block availability so that the
greedy per-cycle routing step rarely starves any block (§4.4's discussion).

The selection is what shrinks the routing step's search space: only the
selected deliveries become LP commodities.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Tuple

from repro.core.decisions import ScheduledBlock
from repro.net.simulator import ClusterView


class RarestFirstScheduler:
    """Selects pending deliveries in ascending order of block duplicates."""

    def __init__(
        self, max_blocks_per_cycle: int = 0, use_relays: bool = True
    ) -> None:
        """``max_blocks_per_cycle``: cap on selections per cycle (0 = all).

        A finite cap bounds the routing problem size for enormous jobs; the
        paper instead bounds work through the per-cycle volume constraint
        (Eq. 3), which the router's demand caps implement — both are
        supported. ``use_relays`` additionally schedules block placements
        onto a job's relay DCs (at lower priority than real deliveries).
        """
        if max_blocks_per_cycle < 0:
            raise ValueError("max_blocks_per_cycle must be >= 0")
        self.max_blocks_per_cycle = max_blocks_per_cycle
        self.use_relays = use_relays

    def select(self, view: ClusterView) -> List[ScheduledBlock]:
        """The cycle's ``w`` assignments, rarest blocks first.

        Only deliveries with at least one healthy source and a healthy
        destination are selected (a failed agent drops out of the decision
        space, §5.3). Relay placements sort after all real deliveries.
        """
        started = _time.perf_counter()
        candidates: List[Tuple[int, int, int, int, ScheduledBlock]] = []
        for job in view.jobs:
            priority = getattr(job, "priority", 0)
            pending = [
                (block, dc, server, False)
                for block, dc, server in view.pending_deliveries(job)
            ]
            if self.use_relays and job.relay_dcs:
                pending.extend(
                    (block, dc, server, True)
                    for block, dc, server in view.pending_relay_placements(job)
                )
            for block, dst_dc, dst_server, is_relay in pending:
                if not view.agent_is_up(dst_server):
                    continue
                duplicates = view.store.duplicate_count(block.block_id)
                if duplicates == 0:
                    continue
                if not view.eligible_sources(block.block_id):
                    continue
                candidates.append(
                    (
                        1 if is_relay else 0,
                        -priority,
                        duplicates,
                        block.index,
                        ScheduledBlock(
                            job_id=job.job_id,
                            block=block,
                            dst_dc=dst_dc,
                            dst_server=dst_server,
                            duplicates=duplicates,
                            is_relay=is_relay,
                        ),
                    )
                )
        candidates.sort(key=lambda item: item[:4])
        selected = [entry for _r, _p, _dup, _idx, entry in candidates]
        if self.max_blocks_per_cycle:
            selected = selected[: self.max_blocks_per_cycle]
        self.last_runtime = _time.perf_counter() - started
        return selected

"""Summary statistics and empirical CDFs used across the evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    p99: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; raises on empty input."""
    if not len(values):
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100])."""
    if not len(values):
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def empirical_cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Sorted values and their cumulative probabilities.

    Returns ``(xs, ps)`` with ``ps[i] = (i + 1) / n`` — the standard
    right-continuous empirical CDF, directly plottable as the paper's CDFs.
    """
    if not len(values):
        raise ValueError("cannot build a CDF from an empty sample")
    xs = sorted(float(v) for v in values)
    n = len(xs)
    ps = [(i + 1) / n for i in range(n)]
    return xs, ps


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of the sample <= x."""
    if not len(values):
        raise ValueError("empty sample")
    arr = np.asarray(values, dtype=float)
    return float((arr <= x).mean())


def fraction_above(values: Sequence[float], x: float) -> float:
    """Fraction of the sample strictly greater than x."""
    if not len(values):
        raise ValueError("empty sample")
    arr = np.asarray(values, dtype=float)
    return float((arr > x).mean())


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline``."""
    if improved <= 0:
        raise ValueError("improved time must be > 0")
    return baseline / improved

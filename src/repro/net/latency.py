"""Inter-DC control-plane latency model (paper Fig. 11b).

The paper reports one-way control-message delays between agents and the
controller with mean ≈ 25 ms and a 90th percentile under 50 ms. We model
each DC pair with a base propagation delay (drawn once from the pair's
geography surrogate) plus per-message lognormal jitter, which matches the
heavy-but-thin tail of the measured CDF.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive


class LatencyModel:
    """Samples one-way network delays (in seconds) between DCs."""

    def __init__(
        self,
        mean_ms: float = 25.0,
        jitter_sigma: float = 0.45,
        intra_dc_ms: float = 0.5,
        seed: SeedLike = None,
    ) -> None:
        check_positive("mean_ms", mean_ms)
        check_positive("intra_dc_ms", intra_dc_ms)
        self.mean_ms = mean_ms
        self.jitter_sigma = jitter_sigma
        self.intra_dc_ms = intra_dc_ms
        self._rng = make_rng(seed)
        self._base_ms: Dict[Tuple[str, str], float] = {}

    def _pair_base(self, dc_a: str, dc_b: str) -> float:
        """Stable base delay for a DC pair, symmetric in its endpoints."""
        key = (dc_a, dc_b) if dc_a <= dc_b else (dc_b, dc_a)
        if key not in self._base_ms:
            if dc_a == dc_b:
                self._base_ms[key] = self.intra_dc_ms
            else:
                # Base delays spread around the configured mean: a mixture of
                # nearby (metro) and far (cross-continent) DC pairs.
                self._base_ms[key] = float(
                    self._rng.uniform(0.3 * self.mean_ms, 1.4 * self.mean_ms)
                )
        return self._base_ms[key]

    def sample_delay(self, src_dc: str, dst_dc: str) -> float:
        """One-way delay in seconds for a single control message."""
        base = self._pair_base(src_dc, dst_dc)
        # Lognormal jitter with median 1: occasional congestion spikes.
        jitter = math.exp(self._rng.normal(0.0, self.jitter_sigma))
        return base * jitter / 1000.0

    def sample_many(self, src_dc: str, dst_dc: str, count: int) -> List[float]:
        """Convenience: ``count`` independent delay samples in seconds."""
        return [self.sample_delay(src_dc, dst_dc) for _ in range(count)]

"""The BDS routing step: grouping, backends, directives."""

import pytest

from repro.core import BDSController
from repro.core.routing import BDSRouter
from repro.core.scheduling import RarestFirstScheduler
from repro.net.flow import Flow, resource_utilization
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


def make_sim(num_dcs=3, servers=2, blocks=6, uplink=10 * MBps):
    topo = Topology.full_mesh(
        num_dcs=num_dcs, servers_per_dc=servers, wan_capacity=1 * GB, uplink=uplink
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=tuple(f"dc{i}" for i in range(1, num_dcs)),
        total_bytes=blocks * 2 * MB,
        block_size=2 * MB,
    )
    job.bind(topo)
    return Simulation(topo, [job], BDSController(seed=0), SimConfig())


class TestRouterConstruction:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            BDSRouter(backend="magic")

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            BDSRouter(epsilon=0)


@pytest.mark.parametrize("backend", ["greedy", "fptas", "lp"])
class TestBackends:
    def test_directives_produced(self, backend):
        sim = make_sim()
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        router = BDSRouter(backend=backend)
        directives, diag = router.route(view, selections)
        assert directives
        assert diag.backend == backend
        assert diag.objective > 0
        assert diag.num_commodities > 0

    def test_rates_respect_capacities(self, backend):
        sim = make_sim()
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        directives, _diag = BDSRouter(backend=backend).route(view, selections)
        flows = [
            Flow(
                flow_id=i,
                resources=view.topology.flow_resources(d.src_server, d.dst_server),
            )
            for i, d in enumerate(directives)
        ]
        rates = {i: d.rate_cap for i, d in enumerate(directives)}
        usage = resource_utilization(flows, rates)
        for res, used in usage.items():
            assert used <= view.bulk_capacities[res] * 1.001

    def test_sources_actually_hold_blocks(self, backend):
        sim = make_sim()
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        directives, _ = BDSRouter(backend=backend).route(view, selections)
        for d in directives:
            for bid in d.block_ids:
                assert view.store.has(d.src_server, bid)
                assert not view.store.has(d.dst_server, bid)


class TestRoutingBehavior:
    def test_empty_selection_is_noop(self):
        sim = make_sim()
        view = sim.snapshot_view()
        directives, diag = BDSRouter().route(view, [])
        assert directives == []
        assert diag.num_selections == 0

    def test_merging_reduces_directives(self):
        sim = make_sim(blocks=12)
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        merged, _ = BDSRouter(merge_blocks=True).route(view, selections)
        unmerged, _ = BDSRouter(merge_blocks=False).route(view, selections)
        assert len(merged) < len(unmerged)

    def test_unmerged_covers_same_blocks(self):
        sim = make_sim(blocks=6)
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        merged, _ = BDSRouter(merge_blocks=True).route(view, selections)
        unmerged, _ = BDSRouter(merge_blocks=False).route(view, selections)

        def covered(directives):
            return {
                (bid, d.dst_server) for d in directives for bid in d.block_ids
            }

        assert covered(merged) == covered(unmerged)

    def test_rotation_gives_destinations_different_orders(self):
        """Different destination servers should not receive identical
        leading blocks — the Fig. 1 send-order diversity."""
        sim = make_sim(num_dcs=4, servers=1, blocks=12, uplink=2 * MBps)
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        directives, _ = BDSRouter().route(view, selections)
        first_blocks = {}
        for d in directives:
            first_blocks.setdefault(d.dst_server, d.block_ids[0])
        assert len(set(first_blocks.values())) > 1

    def test_max_sources_bounds_group_fanout(self):
        sim = make_sim()
        view = sim.snapshot_view()
        # Replicate block 0 everywhere to create many candidate sources.
        job = view.jobs[0]
        for server in list(view.topology.servers)[:5]:
            view.store.seed(server, [job.blocks[0]])
        selections = RarestFirstScheduler().select(view)
        router = BDSRouter(max_sources_per_group=2)
        groups = router._build_groups(view, selections)
        for (_job, _dst, sources) in groups:
            assert len(sources) <= 2

    def test_diagnostics_runtime_positive(self):
        sim = make_sim()
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        _, diag = BDSRouter().route(view, selections)
        assert diag.runtime > 0
        assert diag.num_selections == len(selections)


class TestWarmStartIntegration:
    def test_fptas_diagnostics_and_reuse(self):
        sim = make_sim()
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        router = BDSRouter(backend="fptas")
        directives, diag = router.route(view, selections)
        assert diag.warm_start == "cold"
        assert diag.iterations > 0
        assert diag.phases > 0
        # Same view, same selections: the solver recognizes the identical
        # instance and returns the cached solution verbatim.
        directives2, diag2 = router.route(view, selections)
        assert diag2.warm_start == "reuse"
        assert diag2.iterations == 0
        assert diag2.objective == diag.objective
        assert [(d.src_server, d.dst_server, d.rate_cap) for d in directives] == [
            (d.src_server, d.dst_server, d.rate_cap) for d in directives2
        ]

    def test_cold_router_matches_warm_router_bit_for_bit(self):
        sim = make_sim()
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        warm_router = BDSRouter(backend="fptas")
        warm_router.route(view, selections)  # prime the warm store
        warm_directives, _ = warm_router.route(view, selections)
        cold_directives, _ = BDSRouter(backend="fptas").route(view, selections)
        assert [
            (d.src_server, d.dst_server, d.block_ids, d.rate_cap)
            for d in warm_directives
        ] == [
            (d.src_server, d.dst_server, d.block_ids, d.rate_cap)
            for d in cold_directives
        ]

    def test_greedy_and_lp_report_no_solver_telemetry(self):
        sim = make_sim()
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        for backend in ("greedy", "lp"):
            _, diag = BDSRouter(backend=backend).route(view, selections)
            assert diag.iterations == 0
            assert diag.phases == 0
            assert diag.warm_start == ""

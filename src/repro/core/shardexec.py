"""Process fan-out for the sharded controller (``shard_mode="process"``).

One persistent single-worker :class:`~concurrent.futures.
ProcessPoolExecutor` per shard gives each shard worker affinity: the
worker keeps a mirror of its shard's state (jobs, a private
:class:`~repro.overlay.store.PossessionIndex`, a warm
:class:`~repro.net.cycle_cache.CycleCache`) across cycles, so per-decide
payloads are *deltas* — only new jobs, the possession changes since the
shard's last turn, and the small per-cycle scalars cross the process
boundary. All payloads are pickle-pure (topologies, jobs, and directives
are plain dataclasses of primitives; jobs carry no topology reference —
their placement binding is a string dict).

Determinism: the parent submits due shards in shard-index order and
gathers results in the same order, so the combined directive list is
identical to the in-process loop's regardless of worker scheduling. The
worker runs the same scheduler/router construction as an in-process
shard pipeline; its view is a plain :class:`ClusterView` over the mirror
store (no candidate table), which takes the scalar cached paths — these
are bit-identical to the vectorized kernel by the array-control-plane
equivalence guarantees, so ``shard_mode`` never changes results.

Seeding protocol: the simulator seeds every job's initial placement at
construction time, *before* any deliveries, and ``PossessionIndex.seed``
does not write the delivery log — so the first time a job ships to its
worker, the parent snapshots that job's current holders outright, and
every later possession change arrives through the delivery-log watermark
replay. Replays re-apply via ``seed`` (idempotent: an already-set
possession bit is a no-op), so overlap between a snapshot and the log
can never double-count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.sharding import stable_shard

BlockId = Tuple[str, int]


@dataclass
class ShardPayload:
    """One due shard's decide input (a delta against the worker mirror)."""

    cycle: int
    time: float
    cycle_seconds: float
    budgets: Dict
    failed_agents: Tuple[str, ...]
    failed_links: FrozenSet
    active_job_ids: Tuple[str, ...]
    #: Jobs the worker has not seen yet, with a holders snapshot per block
    #: (sorted server tuples — deterministic payload bytes).
    new_jobs: List = field(default_factory=list)
    new_holders: List[Tuple[BlockId, Tuple[str, ...]]] = field(
        default_factory=list
    )
    #: Possession deltas since this shard's previous payload:
    #: ``(block_id, dst_server)`` in delivery-log order.
    deliveries: List[Tuple[BlockId, str]] = field(default_factory=list)
    #: In-flight partial bytes for this shard's blocks.
    partials: Dict = field(default_factory=dict)
    #: First payload only: the topology, store vectorization flag, and
    #: controller config the worker builds its pipeline from.
    topology: Optional[object] = None
    vectorized: bool = True
    config: Optional[object] = None


@dataclass
class ShardResult:
    """One shard decide's output, shipped back to the parent."""

    directives: List
    scheduled_blocks: int
    num_commodities: int
    objective: float
    schedule_runtime: float
    routing_runtime: float
    iterations: int
    phases: int
    warm_start: str
    reuse_horizon: Optional[int]
    wall: float


# Worker-process mirror state. Each pool has exactly one worker and
# serves exactly one shard, so a single module global suffices.
_STATE: Optional[dict] = None


def _worker_decide(payload: ShardPayload) -> ShardResult:
    import time as _time

    from repro.core.routing import BDSRouter
    from repro.core.scheduling import RarestFirstScheduler
    from repro.net.cycle_cache import CycleCache
    from repro.net.simulator import ClusterView
    from repro.overlay.store import PossessionIndex

    global _STATE
    if _STATE is None:
        topology = payload.topology
        config = payload.config
        server_dc = {
            server.server_id: server.dc
            for server in topology.servers.values()
        }
        _STATE = {
            "topology": topology,
            "store": PossessionIndex(server_dc, vectorized=payload.vectorized),
            "jobs_by_id": {},
            "blocks_by_id": {},
            "scheduler": RarestFirstScheduler(
                max_blocks_per_cycle=config.max_blocks_per_cycle,
                use_relays=config.use_relays,
            ),
            "router": BDSRouter(
                backend=config.routing_backend,
                epsilon=config.epsilon,
                max_sources_per_group=config.max_sources_per_group,
                merge_blocks=config.merge_blocks,
            ),
            "cache": CycleCache(),
        }
    st = _STATE
    store = st["store"]
    blocks_by_id = st["blocks_by_id"]
    for job in payload.new_jobs:
        st["jobs_by_id"][job.job_id] = job
        for block in job.blocks:
            blocks_by_id[block.block_id] = block
    for block_id, servers in payload.new_holders:
        block = blocks_by_id[block_id]
        for server in servers:
            store.seed(server, (block,))
    for block_id, dst in payload.deliveries:
        store.seed(dst, (blocks_by_id[block_id],))

    view = ClusterView(
        topology=st["topology"],
        store=store,
        jobs=[st["jobs_by_id"][jid] for jid in payload.active_job_ids],
        cycle=payload.cycle,
        time=payload.time,
        cycle_seconds=payload.cycle_seconds,
        bulk_capacities=payload.budgets,
        failed_agents=set(payload.failed_agents),
        controller_available=True,
        partial_bytes=payload.partials,
        failed_links=payload.failed_links,
        cache=st["cache"],
    )
    scheduler = st["scheduler"]
    router = st["router"]
    started = _time.perf_counter()
    selections = scheduler.select(view)
    directives, diag = router.route(
        view, selections, batch=getattr(scheduler, "last_batch", None)
    )
    wall = _time.perf_counter() - started
    return ShardResult(
        directives=directives,
        scheduled_blocks=len(selections),
        num_commodities=diag.num_commodities,
        objective=diag.objective,
        schedule_runtime=getattr(scheduler, "last_runtime", 0.0),
        routing_runtime=diag.runtime,
        iterations=diag.iterations,
        phases=diag.phases,
        warm_start=diag.warm_start,
        reuse_horizon=diag.reuse_horizon,
        wall=wall,
    )


class ShardExecutor:
    """Parent-side manager of the per-shard worker pools."""

    def __init__(self, config) -> None:
        self.config = config
        self._pools: List[Optional[ProcessPoolExecutor]] = [
            None
        ] * config.shards
        self._known_jobs: List[set] = [set() for _ in range(config.shards)]
        self._watermarks: List[int] = [0] * config.shards
        self._job_shard: Dict[str, int] = {}

    def _shard_of(self, job_id: str) -> int:
        shard = self._job_shard.get(job_id)
        if shard is None:
            shard = stable_shard(job_id, self.config.shards, self.config.shard_seed)
            self._job_shard[job_id] = shard
        return shard

    def _payload(self, view, shard: int, bucket: Sequence) -> ShardPayload:
        known = self._known_jobs[shard]
        new_jobs = [job for job in bucket if job.job_id not in known]
        new_holders: List[Tuple[BlockId, Tuple[str, ...]]] = []
        store = view.store
        for job in new_jobs:
            known.add(job.job_id)
            for block in job.blocks:
                holders = store.holders(block.block_id)
                if holders:
                    new_holders.append(
                        (block.block_id, tuple(sorted(holders)))
                    )
        log = store.deliveries
        watermark = self._watermarks[shard]
        deliveries = [
            (record.block_id, record.dst_server)
            for record in log[watermark:]
            if self._shard_of(record.block_id[0]) == shard
        ]
        self._watermarks[shard] = len(log)
        partials = {
            key: value
            for key, value in getattr(view, "_partial", {}).items()
            if self._shard_of(key[0][0]) == shard
        }
        first = self._pools[shard] is None
        return ShardPayload(
            cycle=view.cycle,
            time=view.time,
            cycle_seconds=view.cycle_seconds,
            budgets=dict(view.bulk_capacities),
            failed_agents=tuple(sorted(view.failed_agents)),
            failed_links=view.failed_links,
            active_job_ids=tuple(job.job_id for job in bucket),
            new_jobs=new_jobs,
            new_holders=new_holders,
            deliveries=deliveries,
            partials=partials,
            topology=view.topology if first else None,
            vectorized=getattr(store, "matrix", None) is not None,
            config=self.config if first else None,
        )

    def decide(self, view, buckets, due: Sequence[int]) -> List[ShardResult]:
        """Run the due shards' decides concurrently; results in due order."""
        futures = []
        for shard in due:
            payload = self._payload(view, shard, buckets[shard])
            pool = self._pools[shard]
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=1)
                self._pools[shard] = pool
            futures.append(pool.submit(_worker_decide, payload))
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        for pool in self._pools:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        self._pools = [None] * self.config.shards
